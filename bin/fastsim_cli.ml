(* fastsim: command-line front end.

     fastsim list                         all workloads
     fastsim run go --engine fast         simulate a workload
     fastsim run gcc --engine all --scale 50
     fastsim sweep -w go -w compress --jobs 4 --out report.json
     fastsim disasm perl                  disassemble a workload *)

open Cmdliner
module Spec = Fastsim.Sim.Spec

let workload_conv =
  let parse s =
    match Workloads.Suite.find s with
    | w -> Ok w
    | exception Not_found ->
      Error (`Msg (Printf.sprintf "unknown workload %S (try `fastsim list')" s))
  in
  let print ppf (w : Workloads.Workload.t) = Format.fprintf ppf "%s" w.name in
  Arg.conv (parse, print)

let workload_arg =
  Arg.(
    required
    & pos 0 (some workload_conv) None
    & info [] ~docv:"WORKLOAD" ~doc:"Workload name, e.g. go or 099.go.")

let scale_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "scale" ] ~docv:"N" ~doc:"Iteration scale (default: per-workload).")

let engine_arg =
  Arg.(
    value
    & opt (enum [ ("fast", `Fast); ("slow", `Slow); ("baseline", `Baseline);
                  ("functional", `Functional); ("all", `All) ])
        `Fast
    & info [ "engine"; "e" ] ~docv:"ENGINE"
        ~doc:
          "Simulation engine: $(b,fast) (memoized), $(b,slow) (detailed \
           every cycle), $(b,baseline) (SimpleScalar-style), \
           $(b,functional), or $(b,all).")

let policy_conv =
  let parse s =
    match Spec.policy_of_string s with
    | Ok p -> Ok p
    | Error m -> Error (`Msg m)
  in
  let print ppf p = Format.fprintf ppf "%s" (Spec.policy_to_string p) in
  Arg.conv (parse, print)

let policy_arg =
  Arg.(
    value
    & opt policy_conv Memo.Pcache.Unbounded
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:
          "P-action cache policy: $(b,unbounded), $(b,flush:BYTES), \
           $(b,copy:BYTES), or $(b,gen:NURSERY:TOTAL).")

let predictor_arg =
  Arg.(
    value
    & opt (enum [ ("standard", Fastsim.Sim.Standard);
                  ("not-taken", Fastsim.Sim.Not_taken);
                  ("taken", Fastsim.Sim.Taken) ])
        Fastsim.Sim.Standard
    & info [ "predictor" ] ~docv:"PRED"
        ~doc:"Branch predictor: $(b,standard), $(b,not-taken), $(b,taken).")

let tiny_cache_arg =
  Arg.(
    value & flag
    & info [ "tiny-cache" ] ~doc:"Use the tiny cache configuration.")

let save_pcache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-pcache" ] ~docv:"FILE"
        ~doc:"After a fast run, persist the p-action cache to $(docv).")

let load_pcache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "load-pcache" ] ~docv:"FILE"
        ~doc:
          "Warm-start the fast engine from a p-action cache saved by a \
           previous run of the same workload and scale.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a structured event trace of the run to $(docv). The \
           default format is Chrome $(b,trace_event) JSON — load it in \
           Perfetto (ui.perfetto.dev) or chrome://tracing. Works with \
           both engines: under memoization, fast-forwarded regions emit \
           synthetic events reconstructed from the replayed action \
           chains.")

let trace_format_arg =
  Arg.(
    value
    & opt (enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ]) `Chrome
    & info [ "trace-format" ] ~docv:"FMT"
        ~doc:
          "Trace file format: $(b,chrome) (trace_event JSON for \
           Perfetto) or $(b,jsonl) (one event object per line, for jq).")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the metrics registry (counters, gauges, log2-bucketed \
           histograms) to $(docv) as JSON.")

let memo_report_arg =
  Arg.(
    value & flag
    & info [ "memo-report" ]
        ~doc:
          "After a fast run, print a detailed memoization report \
           (replay-episode statistics and p-action cache counters).")

(* --strategy and its knobs (docs/STRATEGY.md) *)

let strategy_arg =
  Arg.(
    value
    & opt (enum [ ("serial", `Serial); ("parallel", `Parallel);
                  ("sampled", `Sampled) ])
        `Serial
    & info [ "strategy" ] ~docv:"STRATEGY"
        ~doc:
          "Simulation strategy: $(b,serial) (the default single pass), \
           $(b,parallel) (interval-parallel with stitching; bit-identical \
           to serial), or $(b,sampled) (SMARTS-style periodic sampling; \
           exact architectural results, estimated timing).")

let interval_insns_arg =
  Arg.(
    value
    & opt int 50_000
    & info [ "interval-insns" ] ~docv:"N"
        ~doc:
          "($(b,parallel)) Interval length in retired instructions; one \
           worker simulates each interval.")

let warmup_insns_arg =
  Arg.(
    value
    & opt int 5_000
    & info [ "warmup-insns" ] ~docv:"N"
        ~doc:
          "($(b,parallel)/$(b,sampled)) Detailed warmup run before each \
           interval or sample window and discarded from its statistics.")

let sample_insns_arg =
  Arg.(
    value
    & opt int 2_000
    & info [ "sample-insns" ] ~docv:"N"
        ~doc:"($(b,sampled)) Measured window length, in retired instructions.")

let sample_period_arg =
  Arg.(
    value
    & opt int 50_000
    & info [ "sample-period" ] ~docv:"N"
        ~doc:
          "($(b,sampled)) Distance between successive window starts, in \
           retired instructions.")

let strategy_jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"JOBS"
        ~doc:
          "($(b,parallel)) Worker processes for interval simulation \
           (default: one per core).")

let strategy_backend_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("fork", Fastsim_exec.Pool.Fork); ("domains", Fastsim_exec.Pool.Domains);
             ("inline", Fastsim_exec.Pool.Inline) ])
        Fastsim_exec.Pool.Fork
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "($(b,parallel)) Worker pool backend: $(b,fork), $(b,domains) \
           or $(b,inline).")

let print_provenance (r : Fastsim.Sim.result) =
  match r.Fastsim.Sim.provenance with
  | None -> ()
  | Some p ->
    (match p.Fastsim.Sim.prov_fallback with
     | Some reason ->
       Printf.printf "  strategy %s: fell back to serial (%s)\n"
         p.prov_strategy reason
     | None when p.prov_strategy = "parallel" ->
       Printf.printf
         "  strategy parallel: %d intervals, %d stitched, %d repaired\n"
         p.prov_intervals p.prov_accepted p.prov_repaired
     | None ->
       Printf.printf "  strategy %s: %d intervals\n" p.prov_strategy
         p.prov_intervals);
    match p.Fastsim.Sim.prov_errors with
    | [] -> ()
    | errors ->
      Printf.printf "  est. relative error:%s\n"
        (String.concat ""
           (List.map
              (fun (k, e) -> Printf.sprintf " %s ±%.1f%%" k (100. *. e))
              errors))

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let print_result name (r : Fastsim.Sim.result) t =
  Printf.printf "%s: %d cycles, %d retired (IPC %.2f) in %.2fs (%.0f Kinst/s)\n"
    name r.cycles r.retired
    (float_of_int r.retired /. float_of_int r.cycles)
    t
    (float_of_int r.retired /. t /. 1000.);
  Printf.printf
    "  branches: %d cond (%.1f%% mispredicted), %d indirect (%d misfetched), \
     %d wrong-path insts\n"
    r.branches.conditionals
    (100.
    *. float_of_int r.branches.mispredicted
    /. float_of_int (max 1 r.branches.conditionals))
    r.branches.indirects r.branches.misfetched r.wrong_path_insts;
  Printf.printf "  cache: %d/%d L1, %d/%d L2 hits/misses\n" r.cache.l1_hits
    r.cache.l1_misses r.cache.l2_hits r.cache.l2_misses;
  let mix = r.retired_by_class in
  Printf.printf "  mix:";
  List.iter
    (fun fu ->
      let n = mix.(Isa.Instr.fu_index fu) in
      if n > 0 then
        Printf.printf " %s %.1f%%" (Isa.Instr.fu_name fu)
          (100. *. float_of_int n /. float_of_int r.retired))
    [ Isa.Instr.Fu_int_alu; Fu_int_mul; Fu_int_div; Fu_fp_add; Fu_fp_mul;
      Fu_fp_div; Fu_fp_sqrt; Fu_mem; Fu_branch ];
  print_newline ();
  match (r.memo, r.pcache) with
  | Some m, Some p ->
    Printf.printf
      "  memo: %.3f%% detailed, %d configs, %d actions, %.1f KB peak, \
       avg chain %.0f\n"
      (100. *. Memo.Stats.detailed_fraction m)
      p.static_configs p.static_actions
      (float_of_int p.peak_modeled_bytes /. 1024.)
      (Memo.Stats.avg_chain m)
  | _ -> ()

(* --memo-report: the long-form version of the one-line memo summary. *)
let print_memo_report (r : Fastsim.Sim.result) =
  match (r.memo, r.pcache) with
  | Some m, Some p ->
    let pct a b = 100. *. float_of_int a /. float_of_int (max 1 b) in
    Printf.printf "memoization report\n";
    Printf.printf "  dynamic (Tables 4-5)\n";
    Printf.printf "    %-28s %12d  (%5.2f%%)\n" "detailed cycles"
      m.Memo.Stats.detailed_cycles
      (pct m.detailed_cycles (Memo.Stats.total_cycles m));
    Printf.printf "    %-28s %12d  (%5.2f%%)\n" "replayed cycles"
      m.replayed_cycles
      (pct m.replayed_cycles (Memo.Stats.total_cycles m));
    Printf.printf "    %-28s %12d  (%5.2f%%)\n" "detailed retired"
      m.detailed_retired
      (100. *. Memo.Stats.detailed_fraction m);
    Printf.printf "    %-28s %12d  (%5.2f%%)\n" "replayed retired"
      m.replayed_retired
      (pct m.replayed_retired (Memo.Stats.total_retired m));
    Printf.printf "    %-28s %12d\n" "actions replayed" m.actions_replayed;
    Printf.printf "    %-28s %12d\n" "groups replayed" m.groups_replayed;
    Printf.printf "    %-28s %12d\n" "replay episodes" m.episodes;
    Printf.printf "    %-28s %12.1f\n" "avg chain length"
      (Memo.Stats.avg_chain m);
    Printf.printf "    %-28s %12d\n" "max chain length" m.chain_max;
    Printf.printf "    %-28s %12d\n" "detailed (re)entries"
      m.detailed_entries;
    Printf.printf "  p-action cache\n";
    Printf.printf "    %-28s %12d\n" "static configs" p.static_configs;
    Printf.printf "    %-28s %12d\n" "static actions" p.static_actions;
    Printf.printf "    %-28s %12d\n" "live configs" p.live_configs;
    Printf.printf "    %-28s %12.1f KB\n" "modeled size"
      (float_of_int p.modeled_bytes /. 1024.);
    Printf.printf "    %-28s %12.1f KB\n" "peak modeled size"
      (float_of_int p.peak_modeled_bytes /. 1024.);
    Printf.printf "    %-28s %12d\n" "flushes" p.flushes;
    Printf.printf "    %-28s %12d\n" "minor collections"
      p.minor_collections;
    Printf.printf "    %-28s %12d\n" "full collections" p.full_collections;
    if p.minor_collections + p.full_collections > 0 then
      Printf.printf "    %-28s %d / %d\n" "last GC survivors"
        p.last_gc_survivors p.last_gc_population
  | _ ->
    Printf.printf
      "memo report: no memoization statistics (not a fast-engine run)\n"

let run_cmd =
  let run (w : Workloads.Workload.t) scale engine policy predictor tiny
      save_pcache load_pcache trace_out trace_format metrics_out memo_report
      strategy_kind interval_insns warmup_insns sample_insns sample_period
      jobs backend =
    let scale = Option.value scale ~default:w.default_scale in
    let prog = w.build scale in
    Printf.printf "%s (scale %d): %s\n" w.name scale w.description;
    let strategy =
      match strategy_kind with
      | `Serial -> Fastsim.Sim.Serial
      | `Parallel ->
        Fastsim.Sim.Parallel
          { interval_insns;
            warmup_insns;
            fanout =
              Some (Fastsim_exec.Strategy_pool.fanout ~backend ?jobs ()) }
      | `Sampled ->
        Fastsim.Sim.Sampled { sample_insns; sample_period; warmup_insns }
    in
    (* Observability is attached only when an output was requested, so a
       plain run pays nothing. With --engine all the instruments are
       shared: the trace then contains both engines' runs back to back. *)
    let obs =
      match (trace_out, metrics_out) with
      | None, None -> None
      | _ ->
        Some
          (Fastsim_obs.Ctx.create
             ?trace:
               (Option.map
                  (fun _ -> Fastsim_obs.Trace.create ())
                  trace_out)
             ?metrics:
               (Option.map
                  (fun _ -> Fastsim_obs.Metrics.create ())
                  metrics_out)
             ())
    in
    let spec =
      Spec.default
      |> Spec.with_policy policy
      |> Spec.with_predictor predictor
      |> (if tiny then Spec.with_cache_config Cachesim.Config.tiny
          else Fun.id)
      |> (match obs with Some o -> Spec.with_obs o | None -> Fun.id)
    in
    let write_obs_files () =
      (match (trace_out, Fastsim_obs.Ctx.trace obs) with
       | Some path, Some tr ->
         (match trace_format with
          | `Chrome -> Fastsim_obs.Export.write_chrome_file path tr
          | `Jsonl -> Fastsim_obs.Export.write_jsonl_file path tr);
         Printf.printf "trace: %d events written to %s%s\n"
           (Fastsim_obs.Trace.length tr)
           path
           (let d = Fastsim_obs.Trace.dropped tr in
            if d > 0 then
              Printf.sprintf " (%d oldest events dropped by the ring)" d
            else "")
       | _ -> ());
      match (metrics_out, Fastsim_obs.Ctx.metrics obs) with
      | Some path, Some m ->
        Fastsim_obs.Export.write_metrics_file path m;
        Printf.printf "metrics written to %s\n" path
      | _ -> ()
    in
    let run_fast () =
      let pcache =
        match load_pcache with
        | Some path -> (
          Printf.printf "warm-starting from %s\n" path;
          match Memo.Persist.Codec.load_file ~program:prog path with
          | pc -> pc
          | exception Memo.Persist.Format_error m ->
            Printf.eprintf
              "fastsim: cannot load p-action cache %s: %s\n" path m;
            exit 1
          | exception Sys_error m ->
            Printf.eprintf "fastsim: cannot load p-action cache: %s\n" m;
            exit 1)
        | None -> Memo.Pcache.create ~policy ()
      in
      let spec = Spec.with_pcache pcache spec in
      let r, t =
        time (fun () -> Fastsim.Sim.run ~strategy ~engine:`Fast spec prog)
      in
      print_result "FastSim" r t;
      print_provenance r;
      if memo_report then print_memo_report r;
      (match save_pcache with
       | Some path ->
         Memo.Persist.Codec.save_file pcache ~program:prog path;
         Printf.printf "p-action cache saved to %s\n" path
       | None -> ());
      r
    in
    let run_slow () =
      let r, t =
        time (fun () -> Fastsim.Sim.run ~strategy ~engine:`Slow spec prog)
      in
      print_result "SlowSim" r t;
      print_provenance r;
      (r, t)
    in
    let run_base () =
      let r, t =
        time (fun () -> Fastsim.Sim.run ~engine:`Baseline spec prog)
      in
      Printf.printf
        "SimpleScalar-style: %d cycles, %d retired in %.2fs (%.0f \
         Kinst/s), %d mispredicts\n"
        r.Fastsim.Sim.cycles r.Fastsim.Sim.retired t
        (float_of_int r.Fastsim.Sim.retired /. t /. 1000.)
        r.Fastsim.Sim.branches.mispredicted
    in
    (match engine with
     | `Fast -> ignore (run_fast () : Fastsim.Sim.result)
     | `Slow ->
       let r, _ = run_slow () in
       if memo_report then print_memo_report r
     | `Baseline -> run_base ()
     | `Functional ->
       let (_, _, n), t = time (fun () -> Fastsim.Sim.functional prog) in
       Printf.printf "functional: %d instructions in %.2fs\n" n t
     | `All ->
       let slow, t_slow = run_slow () in
       let fast = run_fast () in
       run_base ();
       assert (slow.Fastsim.Sim.cycles = fast.Fastsim.Sim.cycles);
       Printf.printf "memoization speedup: effectively identical results, \
                      see times above (slow %.2fs)\n" t_slow);
    (try write_obs_files (); 0
     with Sys_error m ->
       Printf.eprintf "fastsim: cannot write output: %s\n" m;
       1)
  in
  let doc = "simulate a workload" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ workload_arg $ scale_arg $ engine_arg $ policy_arg
      $ predictor_arg $ tiny_cache_arg $ save_pcache_arg $ load_pcache_arg
      $ trace_out_arg $ trace_format_arg $ metrics_out_arg $ memo_report_arg
      $ strategy_arg $ interval_insns_arg $ warmup_insns_arg
      $ sample_insns_arg $ sample_period_arg $ strategy_jobs_arg
      $ strategy_backend_arg)

let list_cmd =
  let list () =
    List.iter
      (fun (w : Workloads.Workload.t) ->
        Printf.printf "%-14s %-8s %s\n" w.name
          (match w.category with
           | Workloads.Workload.Integer -> "int"
           | Workloads.Workload.Floating -> "fp")
          w.description)
      Workloads.Suite.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"list the benchmark workloads")
    Term.(const list $ const ())

let disasm_cmd =
  let disasm (w : Workloads.Workload.t) scale =
    let scale = Option.value scale ~default:w.test_scale in
    let prog = w.build scale in
    Format.printf "%a" Isa.Program.pp_listing prog;
    0
  in
  Cmd.v (Cmd.info "disasm" ~doc:"disassemble a workload's program")
    Term.(const disasm $ workload_arg $ scale_arg)

let asm_cmd =
  let asm file engine =
    let source =
      let ic = open_in file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    match Isa.Parse.program source with
    | exception Isa.Parse.Error { line; message } ->
      Printf.eprintf "%s:%d: %s\n" file line message;
      1
    | exception Isa.Asm.Error m ->
      Printf.eprintf "%s: %s\n" file m;
      1
    | prog -> (
      let sim eng = Fastsim.Sim.run ~engine:eng Spec.default prog in
      match engine with
      | `Functional ->
        let (st, _, n), t = time (fun () -> Fastsim.Sim.functional prog) in
        Printf.printf "functional: %d instructions in %.3fs\n" n t;
        Printf.printf "  r1-r9: ";
        for r = 1 to 9 do
          Printf.printf "%d " (Emu.Arch_state.get_i st r)
        done;
        print_newline ();
        0
      | `Fast ->
        let r, t = time (fun () -> sim `Fast) in
        print_result "FastSim" r t;
        0
      | `Slow ->
        let r, t = time (fun () -> sim `Slow) in
        print_result "SlowSim" r t;
        0
      | `Baseline ->
        let r, t = time (fun () -> sim `Baseline) in
        Printf.printf "baseline: %d cycles, %d retired in %.3fs\n"
          r.Fastsim.Sim.cycles r.Fastsim.Sim.retired t;
        0
      | `All ->
        let s, ts = time (fun () -> sim `Slow) in
        print_result "SlowSim" s ts;
        let f, tf = time (fun () -> sim `Fast) in
        print_result "FastSim" f tf;
        assert (s.Fastsim.Sim.cycles = f.Fastsim.Sim.cycles);
        0)
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE.s" ~doc:"Assembly source file.")
  in
  Cmd.v
    (Cmd.info "asm" ~doc:"assemble and simulate a textual assembly file")
    Term.(const asm $ file_arg $ engine_arg)

let trace_cmd =
  let trace (w : Workloads.Workload.t) scale from count =
    let scale = Option.value scale ~default:w.test_scale in
    let prog = w.build scale in
    Printf.printf "%s (scale %d): pipeline trace, cycles %d..%d\n" w.name
      scale from
      (from + count - 1);
    let upto = from + count in
    let observer cycle uarch (r : Uarch.Detailed.cycle_result) =
      if cycle >= from && cycle < upto then begin
        Printf.printf "\n=== cycle %d: retired %d, %d interaction(s)\n"
          cycle r.Uarch.Detailed.retired r.Uarch.Detailed.interactions;
        Format.printf "%a@?" Uarch.Detailed.dump uarch
      end
    in
    let spec =
      Spec.default
      |> Spec.with_max_cycles (upto + 1_000_000)
      |> Spec.with_observer observer
    in
    (try
       ignore (Fastsim.Sim.run ~engine:`Slow spec prog : Fastsim.Sim.result)
     with Fastsim.Sim.Deadlock _ -> ());
    0
  in
  let from_arg =
    Arg.(
      value & opt int 0
      & info [ "from" ] ~docv:"CYCLE" ~doc:"First cycle to print.")
  in
  let count_arg =
    Arg.(
      value & opt int 20
      & info [ "cycles"; "n" ] ~docv:"N" ~doc:"Number of cycles to print.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"print a cycle-by-cycle pipeline trace (detailed simulation)")
    Term.(const trace $ workload_arg $ scale_arg $ from_arg $ count_arg)

let profile_cmd =
  let profile (w : Workloads.Workload.t) scale engine policy predictor tiny =
    let scale = Option.value scale ~default:w.default_scale in
    let prog = w.build scale in
    Printf.printf "%s (scale %d): host-time profile\n" w.name scale;
    let spec =
      Spec.default
      |> Spec.with_policy policy
      |> Spec.with_predictor predictor
      |> (if tiny then Spec.with_cache_config Cachesim.Config.tiny
          else Fun.id)
    in
    (* One profiler per engine run, so the tables are independently
       meaningful (phase seconds sum to that run's wall clock). *)
    let profiled name eng =
      let prof = Fastsim_obs.Profile.create () in
      let obs = Fastsim_obs.Ctx.create ~profile:prof () in
      let (r : Fastsim.Sim.result) =
        Fastsim.Sim.run ~engine:eng (Spec.with_obs obs spec) prog
      in
      Printf.printf "\n%s: %d cycles, %d retired\n" name r.cycles r.retired;
      Format.printf "%a@?" Fastsim_obs.Profile.pp prof
    in
    (match engine with
     | `Fast -> profiled "FastSim" `Fast
     | `Slow -> profiled "SlowSim" `Slow
     | `All ->
       profiled "SlowSim" `Slow;
       profiled "FastSim" `Fast);
    0
  in
  let engine_arg =
    Arg.(
      value
      & opt (enum [ ("fast", `Fast); ("slow", `Slow); ("all", `All) ]) `Fast
      & info [ "engine"; "e" ] ~docv:"ENGINE"
          ~doc:"Engine to profile: $(b,fast), $(b,slow), or $(b,all).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "partition a run's host wall-clock time into simulator phases \
          (detailed / replay / cachesim / emulation)")
    Term.(
      const profile $ workload_arg $ scale_arg $ engine_arg $ policy_arg
      $ predictor_arg $ tiny_cache_arg)

(* ---------------------------------------------------------------- *)
(* fastsim sweep *)

let timestamp () =
  let t = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
    t.Unix.tm_sec

(* ---------------------------------------------------------------- *)
(* fastsim spec: the machine-description schema and document checking.  *)

let print_schema_table () =
  Printf.printf "spec schema version %d\n\n" Spec.version;
  let width =
    List.fold_left
      (fun acc (f : Spec.schema_field) ->
        max acc (String.length f.Spec.sf_path))
      0 Spec.schema
  in
  List.iter
    (fun (f : Spec.schema_field) ->
      Printf.printf "%-*s  %s\n%*s  default %s — %s\n" width f.Spec.sf_path
        f.Spec.sf_type width "" f.Spec.sf_default f.Spec.sf_doc)
    Spec.schema

let spec_schema_cmd =
  let schema json =
    if json then begin
      Fastsim_obs.Json.to_channel stdout (Spec.schema_to_json ());
      print_newline ()
    end
    else print_schema_table ();
    0
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the schema as one JSON object instead of a table.")
  in
  Cmd.v
    (Cmd.info "schema"
       ~doc:"print every spec field with its type, default and meaning"
       ~man:
         [ `S Manpage.s_description;
           `P
             "Lists the versioned machine-description schema: every JSON \
              path a spec document may set (processor parameters, cache \
              geometry, predictor, p-action cache policy, cycle budget), \
              the type the decoder expects, the default the field \
              overlays, and a one-line description. $(b,docs/CONFIG.md) \
              is the prose companion." ])
    Term.(const schema $ json_arg)

let spec_check_cmd =
  let check files quiet =
    let bad = ref 0 in
    List.iter
      (fun path ->
        match Fastsim_obs.Json.of_file path with
        | exception Fastsim_obs.Json.Parse_error m ->
          incr bad;
          Printf.eprintf "%s: %s\n" path m
        | exception Sys_error m ->
          incr bad;
          Printf.eprintf "%s\n" m
        | j -> (
          match Spec.of_json_result j with
          | Ok _ -> if not quiet then Printf.printf "%s: ok\n" path
          | Error m ->
            incr bad;
            Printf.eprintf "%s: %s\n" path m))
      files;
    if !bad > 0 then 1 else 0
  in
  let files_arg =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"SPEC.json" ~doc:"Spec document(s) to validate.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Only report failures.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"validate spec JSON documents against the current decoder"
       ~man:
         [ `S Manpage.s_description;
           `P
             "Decodes each document with the strict spec decoder and \
              reports the first problem in each (unknown or duplicate \
              key, ill-typed value, unsupported version), naming the \
              offending JSON path. Exit status is 0 when every document \
              decodes, 1 otherwise. CI runs this over the v1 fixture \
              corpus to keep old documents decodable." ])
    Term.(const check $ files_arg $ quiet_arg)

let spec_cmd =
  Cmd.group
    (Cmd.info "spec"
       ~doc:"inspect and validate the machine-description format")
    [ spec_schema_cmd; spec_check_cmd ]

let sweep_cmd =
  let module Exec = Fastsim_exec in
  let sweep list_params manifest_file workloads engines scales policies
      predictors warm backend jobs timeout retries out quiet =
    if list_params then begin
      print_schema_table ();
      0
    end
    else
    let ( let* ) r f = match r with Error m -> Error m | Ok v -> f v in
    let result =
      let* manifest =
        match (manifest_file, workloads) with
        | None, [] ->
          Error
            "nothing to sweep: give a MANIFEST.json or at least one \
             --workload"
        | Some path, _ -> (
          match Fastsim_obs.Json.of_file path with
          | j ->
            Result.map_error
              (fun m -> path ^ ": " ^ m)
              (Exec.Manifest.of_json_result j)
          | exception Fastsim_obs.Json.Parse_error m ->
            Error (path ^ ": " ^ m)
          | exception Sys_error m -> Error m)
        | None, ws -> Ok (Exec.Manifest.make ~workloads:ws ())
      in
      (* CLI axes override (or, without a manifest file, populate) the
         manifest. *)
      let manifest =
        { manifest with
          Exec.Manifest.engines =
            (if engines = [] then manifest.Exec.Manifest.engines else engines);
          scales = (if scales = [] then manifest.Exec.Manifest.scales
                    else Some scales);
          policies =
            (if policies = [] then manifest.Exec.Manifest.policies
             else policies);
          predictors =
            (if predictors = [] then manifest.Exec.Manifest.predictors
             else predictors);
          warm = warm || manifest.Exec.Manifest.warm }
      in
      let* () =
        match Exec.Manifest.expand manifest with
        | _ :: _ -> Ok ()
        | [] -> Error "manifest expands to zero jobs"
        | exception Failure m -> Error m
      in
      let config =
        { Exec.Sweep.backend;
          jobs;
          timeout_s = timeout;
          retries;
          on_progress =
            (if quiet then None
             else
               Some
                 (fun line ->
                   Printf.eprintf "%s\n" line;
                   flush stderr)) }
      in
      let report = Exec.Sweep.run ~config manifest in
      let ts = timestamp () in
      (match out with
       | Some path ->
         Exec.Report.write_file ~timestamp:ts path report;
         Printf.eprintf "report written to %s\n" path
       | None ->
         Fastsim_obs.Json.to_channel stdout
           (Exec.Report.to_json ~timestamp:ts report);
         print_newline ());
      let nfail = List.length (Exec.Report.failed report) in
      Printf.eprintf "%d/%d job(s) ok%s\n"
        (Exec.Report.ok_count report)
        (List.length report.Exec.Report.entries)
        (if nfail > 0 then Printf.sprintf ", %d FAILED" nfail else "");
      Ok (if nfail > 0 then 1 else 0)
    in
    match result with
    | Ok code -> code
    | Error m ->
      Printf.eprintf "fastsim sweep: %s\n" m;
      2
  in
  let manifest_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"MANIFEST.json"
          ~doc:
            "Sweep manifest (see $(b,docs/SWEEP.md)). Optional when \
             $(b,--workload) is given.")
  in
  let workloads_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "workload"; "w" ] ~docv:"NAME"
          ~doc:"Add a workload to the sweep (repeatable).")
  in
  let engine_conv =
    Arg.conv
      ( (fun s ->
          match Spec.engine_of_string s with
          | Ok e -> Ok e
          | Error m -> Error (`Msg m)),
        fun ppf e -> Format.fprintf ppf "%s" (Spec.engine_to_string e) )
  in
  let engines_arg =
    Arg.(
      value
      & opt_all engine_conv []
      & info [ "engine"; "e" ] ~docv:"ENGINE"
          ~doc:
            "Engine axis: $(b,fast), $(b,slow) or $(b,baseline) \
             (repeatable; default fast and slow).")
  in
  let scales_arg =
    Arg.(
      value
      & opt_all int []
      & info [ "scale" ] ~docv:"N"
          ~doc:
            "Scale axis (repeatable; default: each workload's own \
             default scale).")
  in
  let policies_arg =
    Arg.(
      value
      & opt_all policy_conv []
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"P-action cache policy axis (repeatable; default unbounded).")
  in
  let predictor_conv =
    Arg.conv
      ( (fun s ->
          match Spec.predictor_of_string s with
          | Ok p -> Ok p
          | Error m -> Error (`Msg m)),
        fun ppf p -> Format.fprintf ppf "%s" (Spec.predictor_to_string p) )
  in
  let predictors_arg =
    Arg.(
      value
      & opt_all predictor_conv []
      & info [ "predictor" ] ~docv:"PRED"
          ~doc:"Predictor axis (repeatable; default standard).")
  in
  let warm_arg =
    Arg.(
      value & flag
      & info [ "warm" ]
          ~doc:
            "Run a p-action cache warming stage first: each distinct \
             (workload, configuration) is simulated once and the \
             persisted cache is fanned out to every fast job.")
  in
  let backend_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("fork", Exec.Pool.Fork); ("domains", Exec.Pool.Domains);
               ("inline", Exec.Pool.Inline) ])
          Exec.Pool.Fork
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            "Worker backend: $(b,fork) (processes; crash isolation and \
             timeouts), $(b,domains) (OCaml 5 domains; falls back to \
             sequential on 4.x), or $(b,inline) (sequential, in-process).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 0
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Worker count. 0 (the default) picks the host's core count.")
  in
  let timeout_arg =
    Arg.(
      value & opt float 0.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-attempt timeout (fork backend only); 0 disables. A \
             timed-out worker is killed and the job retried.")
  in
  let retries_arg =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"N"
          ~doc:"Extra attempts after a crash or timeout (default 1).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Write the JSON report to $(docv) (default: stdout).")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress progress lines.")
  in
  let list_params_arg =
    Arg.(
      value & flag
      & info [ "list-params" ]
          ~doc:
            "List every sweepable spec field (path, type, default, \
             meaning) and exit; same table as $(b,fastsim spec schema).")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "expand a sweep manifest into jobs and run them on a worker pool"
       ~man:
         [ `S Manpage.s_description;
           `P
             "Expands workloads × scales × engines × predictors × cache \
              configurations × policies into jobs, runs them on a pool of \
              forked workers with per-job timeouts and bounded retries, \
              and writes one machine-readable JSON report: per-job cycle \
              counts and memoization counters, plus suite rollups \
              (fast/slow cycle agreement and the geometric-mean \
              memoization speedup). Job order in the report is the \
              manifest expansion order, independent of completion order.";
           `P
             "Exit status is 0 when every job succeeded, 1 when any job \
              failed, 2 on a bad manifest." ])
    Term.(
      const sweep $ list_params_arg $ manifest_arg $ workloads_arg
      $ engines_arg $ scales_arg $ policies_arg $ predictors_arg $ warm_arg
      $ backend_arg $ jobs_arg $ timeout_arg $ retries_arg $ out_arg
      $ quiet_arg)

(* ---------------------------------------------------------------- *)
(* fastsim fuzz *)

let fuzz_cmd =
  let module Exec = Fastsim_exec in
  let module Check = Fastsim_check in
  let fuzz seed cases quick shrink jobs backend timeout out_dir
      max_failures quiet =
    let jobs =
      if jobs > 0 then jobs else Exec.Domain_shim.recommended_jobs ()
    in
    let config =
      { Check.Fuzz.seed;
        cases;
        bias = (if quick then Check.Bias.quick else Check.Bias.default);
        shrink;
        jobs;
        backend;
        timeout_s = timeout;
        out_dir;
        max_failures }
    in
    let log = if quiet then fun _ -> () else print_endline in
    log
      (Printf.sprintf "fuzzing %d cases (seed %d, %d jobs, %s backend)"
         cases seed jobs
         (Exec.Pool.backend_to_string backend));
    let summary = Check.Fuzz.run ~log config in
    print_endline (Check.Fuzz.pp_summary summary);
    if summary.Check.Fuzz.failures = [] then 0 else 1
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Campaign seed. Case $(i,i) is fully determined by (seed, \
             $(i,i)), independent of $(b,--jobs) and $(b,--backend).")
  in
  let cases_arg =
    Arg.(
      value & opt int 100
      & info [ "cases"; "n" ] ~docv:"N" ~doc:"Number of cases to run.")
  in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Generate smaller programs (smoke-test bias; CI uses this).")
  in
  let shrink_arg =
    Arg.(
      value
      & vflag true
          [ ( true,
              info [ "shrink" ]
                ~doc:"Minimize failing reproducers (the default)." );
            ( false,
              info [ "no-shrink" ]
                ~doc:"Report failures without minimizing the reproducer." ) ])
  in
  let jobs_arg =
    Arg.(
      value & opt int 0
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Worker count. 0 (the default) picks the host's core count.")
  in
  let backend_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("fork", Exec.Pool.Fork); ("domains", Exec.Pool.Domains);
               ("inline", Exec.Pool.Inline) ])
          Exec.Pool.Fork
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            "Worker backend: $(b,fork) (processes; crash isolation and \
             per-case timeouts), $(b,domains), or $(b,inline).")
  in
  let timeout_arg =
    Arg.(
      value & opt float 120.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-case timeout (fork backend only); 0 disables.")
  in
  let out_dir_arg =
    Arg.(
      value & opt string "_fuzz"
      & info [ "out-dir"; "o" ] ~docv:"DIR"
          ~doc:"Directory for failing-case artifacts (created on demand).")
  in
  let max_failures_arg =
    Arg.(
      value & opt int 10
      & info [ "max-failures" ] ~docv:"N"
          ~doc:
            "Stop emitting (and shrinking) reproducers after $(docv) \
             failures; later failures are still counted.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress progress lines.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "differentially fuzz the fast engine against the slow reference"
       ~man:
         [ `S Manpage.s_description;
           `P
             "Generates biased random SRISC programs (loop nests, branchy \
              chains, jump-table dispatch, aliasing load/store bursts, \
              calls and bounded recursion) and checks that the memoizing \
              fast engine agrees with the detailed slow engine on every \
              statistic — cycle counts, retirement, branch and cache \
              stats, final architectural state — across full runs, a \
              sweep of max-cycles truncation points, a mid-run p-action \
              cache save/load round-trip, and (for architectural state) \
              the baseline model.";
           `P
             "Each failing case is re-created deterministically, written \
              to $(b,--out-dir) as a runnable .s reproducer plus the \
              failing spec as JSON, and minimized by an automatic \
              shrinker. Exit status is 0 when every case agrees, 1 \
              otherwise.";
           `P
             "Setting $(b,FASTSIM_REPLAY_FAULT_EVERY)=$(i,n) injects a \
              one-cycle timing fault into every $(i,n)-th replayed group \
              — a self-test that the harness detects and shrinks real \
              divergences (CI runs it)." ])
    Term.(
      const fuzz $ seed_arg $ cases_arg $ quick_arg $ shrink_arg
      $ jobs_arg $ backend_arg $ timeout_arg $ out_dir_arg
      $ max_failures_arg $ quiet_arg)

(* ------------------------------------------------------------------ *)
(* serve / client: the persistent daemon and its wire client.          *)

let address_conv =
  let parse s =
    match Fastsim_serve.Proto.address_of_string s with
    | Ok a -> Ok a
    | Error m -> Error (`Msg m)
  in
  let print ppf a =
    Format.fprintf ppf "%s" (Fastsim_serve.Proto.address_to_string a)
  in
  Arg.conv (parse, print)

let address_arg =
  Arg.(
    required
    & pos 0 (some address_conv) None
    & info [] ~docv:"ADDRESS"
        ~doc:
          "Daemon address: $(b,unix:)$(i,PATH) (or a bare path) for a \
           Unix-domain socket, $(b,tcp:)$(i,HOST):$(i,PORT) for loopback \
           TCP.")

let backend_enum =
  [ ("fleet", (`Fleet, `Process));
    ("fleet-domains", (`Fleet, `Domain));
    ("fork", (`Fork, `Process));
    ("inline", (`Inline, `Process)) ]

let serve_cmd =
  let serve address backend jobs queue_max timeout_s budget inline scratch
      allow_fault quiet log_level log_out slow_trace trace_dir =
    let level_or k =
      match log_level with
      | None -> Ok k
      | Some s -> Fastsim_obs.Log.level_of_string s
    in
    match level_or Fastsim_obs.Log.Info with
    | Error m ->
      Printf.eprintf "fastsim serve: %s\n" m;
      124
    | Ok level ->
      let log =
        match log_out with
        | Some path -> Fastsim_obs.Log.open_file ~level path
        | None ->
          (* --log-level alone logs to stderr; neither flag = silent *)
          if log_level = None then Fastsim_obs.Log.null
          else Fastsim_obs.Log.to_channel ~level stderr
      in
      let cfg = Fastsim_serve.Server.default_config address in
      let be, transport = if inline then (`Inline, `Process) else backend in
      let cfg =
        { cfg with
          Fastsim_serve.Server.backend = be;
          fleet_transport = transport;
          jobs;
          queue_max;
          timeout_s;
          registry_budget = budget;
          scratch_dir = scratch;
          allow_fault;
          quiet;
          log;
          slow_trace_s = slow_trace;
          trace_dir }
      in
      Fun.protect ~finally:(fun () -> Fastsim_obs.Log.close log) (fun () ->
          match Fastsim_serve.Server.run cfg with
          | () -> 0
          | exception Unix.Unix_error (e, fn, arg) ->
            Printf.eprintf "fastsim serve: %s %s: %s\n" fn arg
              (Unix.error_message e);
            1)
  in
  let backend_arg =
    Arg.(
      value
      & opt (enum backend_enum) (`Fleet, `Process)
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            "Dispatch backend: $(b,fleet) (default; persistent shard \
             workers with digest-affinity warm caches), \
             $(b,fleet-domains) (same, on OCaml 5 domains — no crash \
             isolation or timeouts), $(b,fork) (one worker process per \
             run), or $(b,inline) (in-process, tests only).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 2
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Shard workers (fleet) / concurrent worker processes (fork).")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-max" ] ~docv:"N"
          ~doc:
            "Bound on queued (not yet running) requests; beyond it new \
             runs are refused with $(b,overloaded).")
  in
  let timeout_arg =
    Arg.(
      value & opt float 0.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-run wall-clock limit (fork backend). 0 disables.")
  in
  let budget_arg =
    Arg.(
      value & opt (some int) None
      & info [ "registry-budget" ] ~docv:"BYTES"
          ~doc:
            "Byte budget for warm p-action caches held in memory; over \
             budget, least-recently-used caches are spilled to disk.")
  in
  let inline_arg =
    Arg.(
      value & flag
      & info [ "inline" ]
          ~doc:"Deprecated alias for $(b,--backend inline).")
  in
  let scratch_arg =
    Arg.(
      value & opt (some string) None
      & info [ "scratch" ] ~docv:"DIR"
          ~doc:
            "Directory for worker result files and spilled caches \
             (default: a private temp dir removed at exit).")
  in
  let allow_fault_arg =
    Arg.(
      value & flag
      & info [ "allow-fault" ]
          ~doc:"Accept the test-only $(b,fault) request field.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No startup banner.")
  in
  let log_level_arg =
    Arg.(
      value & opt (some string) None
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:
            "Structured-log threshold: $(b,debug), $(b,info), $(b,warn) \
             or $(b,error). Without $(b,--log-out), log lines (JSONL) go \
             to stderr.")
  in
  let log_out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "log-out" ] ~docv:"FILE"
          ~doc:
            "Append structured JSONL log lines to $(i,FILE) (level \
             defaults to $(b,info)).")
  in
  let slow_trace_arg =
    Arg.(
      value & opt float 0.
      & info [ "slow-trace" ] ~docv:"SECONDS"
          ~doc:
            "Dump a per-request Chrome trace for any run at least this \
             slow (see $(b,--trace-dir)). 0 disables.")
  in
  let trace_dir_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace-dir" ] ~docv:"DIR"
          ~doc:
            "Where slow-request traces are written (default: the scratch \
             dir, which vanishes at exit unless $(b,--scratch) is set).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"run the persistent simulation daemon"
       ~man:
         [ `S Manpage.s_description;
           `P
             "Listens on $(i,ADDRESS) and serves simulation requests over \
              a framed JSON protocol (see docs/SERVE.md). The daemon \
              keeps a registry of warm p-action caches keyed by (program \
              digest, spec), so repeated requests replay memoized work \
              instead of re-simulating it. SIGTERM or a $(b,shutdown) \
              request drains gracefully." ])
    Term.(
      const serve $ address_arg $ backend_arg $ jobs_arg $ queue_arg
      $ timeout_arg $ budget_arg $ inline_arg $ scratch_arg $ allow_fault_arg
      $ quiet_arg $ log_level_arg $ log_out_arg $ slow_trace_arg
      $ trace_dir_arg)

let client_retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Connection attempts to add if the daemon is not up yet \
           (0.1s apart).")

let with_client address retries f =
  match Fastsim_serve.Client.connect ~retries address with
  | Error m ->
    Printf.eprintf "fastsim client: %s\n" m;
    1
  | Ok c ->
    Fun.protect ~finally:(fun () -> Fastsim_serve.Client.close c)
      (fun () -> f c)

let client_run_cmd =
  let run address retries (w : Workloads.Workload.t) scale engine policy
      predictor tiny json =
    let spec =
      Spec.default
      |> Spec.with_policy policy
      |> Spec.with_predictor predictor
      |> if tiny then Spec.with_cache_config Cachesim.Config.tiny else Fun.id
    in
    let program =
      Fastsim_serve.Proto.Workload { name = w.name; scale }
    in
    with_client address retries (fun c ->
        match
          Fastsim_serve.Client.run c ~id:"cli" ~engine ~spec program
        with
        | Error m ->
          Printf.eprintf "fastsim client: %s\n" m;
          1
        | Ok (Fastsim_serve.Proto.Error { code; message; _ }) ->
          Printf.eprintf "fastsim client: server error [%s]: %s\n"
            (Fastsim_serve.Proto.error_code_to_string code)
            message;
          1
        | Ok (Fastsim_serve.Proto.Result { result; wall_s; warm; digest; _ })
          ->
          if json then
            print_endline
              (Fastsim_obs.Json.to_string (Fastsim.Sim.result_to_json result))
          else
            Printf.printf
              "%s: %d cycles, %d retired, IPC %.3f (%s cache, %.2fs on \
               the server, program %s)\n"
              w.name result.Fastsim.Sim.cycles result.Fastsim.Sim.retired
              (float_of_int result.Fastsim.Sim.retired
              /. float_of_int (max 1 result.Fastsim.Sim.cycles))
              (if warm then "warm" else "cold")
              wall_s
              (String.sub digest 0 (min 12 (String.length digest)));
          0
        | Ok _ ->
          Printf.eprintf "fastsim client: unexpected response\n";
          1)
  in
  let engine_arg =
    Arg.(
      value
      & opt
          (enum [ ("fast", `Fast); ("slow", `Slow); ("baseline", `Baseline) ])
          `Fast
      & info [ "engine"; "e" ] ~docv:"ENGINE"
          ~doc:"Engine: $(b,fast), $(b,slow), or $(b,baseline).")
  in
  let workload_pos1 =
    Arg.(
      required
      & pos 1 (some workload_conv) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload name, e.g. go or 099.go.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the full result record as JSON.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"submit a simulation to the daemon")
    Term.(
      const run $ address_arg $ client_retries_arg $ workload_pos1
      $ scale_arg $ engine_arg $ policy_arg $ predictor_arg $ tiny_cache_arg
      $ json_arg)

let client_stats_cmd =
  let stats address retries json =
    with_client address retries (fun c ->
        match Fastsim_serve.Client.stats c ~id:"cli" with
        | Ok j ->
          if json then print_endline (Fastsim_obs.Json.to_string j)
          else print_string (Fastsim_serve.View.stats_table j);
          0
        | Error m ->
          Printf.eprintf "fastsim client: %s\n" m;
          1)
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the raw stats frame as JSON.")
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"show the daemon's server and registry stats")
    Term.(const stats $ address_arg $ client_retries_arg $ json_arg)

let client_metrics_cmd =
  let metrics address retries json =
    with_client address retries (fun c ->
        match Fastsim_serve.Client.telemetry c ~id:"cli" () with
        | Error m ->
          Printf.eprintf "fastsim client: %s\n" m;
          1
        | Ok tel ->
          if json then begin
            print_endline (Fastsim_obs.Json.to_string tel);
            0
          end
          else (
            match
              Fastsim_obs.Metrics.snapshot_of_json
                (Fastsim_obs.Json.member "metrics" tel)
            with
            | Ok snap ->
              print_string (Fastsim_obs.Export.prometheus_of_snapshot snap);
              0
            | Error m | (exception Fastsim_obs.Json.Parse_error m) ->
              Printf.eprintf "fastsim client: %s\n" m;
              1))
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the raw telemetry frame as JSON instead.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"scrape the daemon's metrics (Prometheus text exposition)")
    Term.(const metrics $ address_arg $ client_retries_arg $ json_arg)

let client_trace_cmd =
  let trace address retries out =
    with_client address retries (fun c ->
        match
          Fastsim_serve.Client.telemetry c ~id:"cli" ~include_trace:true ()
        with
        | Error m ->
          Printf.eprintf "fastsim client: %s\n" m;
          1
        | Ok tel ->
          if not (Fastsim_obs.Json.mem "trace" tel) then begin
            Printf.eprintf "fastsim client: no trace in telemetry frame\n";
            1
          end
          else begin
            let oc = open_out out in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                Fastsim_obs.Json.to_channel oc
                  (Fastsim_obs.Json.member "trace" tel));
            let spans =
              if Fastsim_obs.Json.mem "trace_spans" tel then
                Fastsim_obs.Json.to_int
                  (Fastsim_obs.Json.member "trace_spans" tel)
              else 0
            in
            Printf.printf "wrote %s (%d spans)\n" out spans;
            0
          end)
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Output file for the Chrome trace JSON.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "download the daemon's buffered request spans as a stitched \
          Chrome trace (load in Perfetto or chrome://tracing)")
    Term.(const trace $ address_arg $ client_retries_arg $ out_arg)

let top_cmd =
  let top address retries interval count no_clear =
    with_client address retries (fun c ->
        let rec loop i prev =
          match Fastsim_serve.Client.telemetry c ~id:"cli" () with
          | Error m ->
            Printf.eprintf "fastsim top: %s\n" m;
            1
          | Ok tel -> (
            match Fastsim_serve.View.sample_of_json tel with
            | Error m ->
              Printf.eprintf "fastsim top: %s\n" m;
              1
            | Ok sample ->
              if not no_clear then print_string "\027[2J\027[H";
              print_string (Fastsim_serve.View.top_view ?prev sample);
              flush stdout;
              if count > 0 && i + 1 >= count then 0
              else begin
                Unix.sleepf interval;
                loop (i + 1) (Some sample)
              end)
        in
        loop 0 None)
  in
  let interval_arg =
    Arg.(
      value & opt float 2.
      & info [ "interval"; "i" ] ~docv:"SECONDS"
          ~doc:"Seconds between telemetry polls.")
  in
  let count_arg =
    Arg.(
      value & opt int 0
      & info [ "count"; "n" ] ~docv:"N"
          ~doc:"Stop after N frames (0 = run until interrupted).")
  in
  let no_clear_arg =
    Arg.(
      value & flag
      & info [ "no-clear" ]
          ~doc:
            "Do not clear the screen between frames (append them — \
             useful for logs and CI).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"live view of a fastsim daemon"
       ~man:
         [ `S Manpage.s_description;
           `P
             "Polls the daemon's $(b,telemetry) frame and redraws a \
              summary: in-flight runs, queue depth, p50/p99 latency and \
              queue wait, warm-hit rate and replay fraction. Rates and \
              percentiles are computed per polling interval after the \
              first frame." ])
    Term.(
      const top $ address_arg $ client_retries_arg $ interval_arg $ count_arg
      $ no_clear_arg)

let client_ping_cmd =
  let ping address retries =
    with_client address retries (fun c ->
        match Fastsim_serve.Client.ping c ~id:"cli" with
        | Ok () ->
          print_endline "pong";
          0
        | Error m ->
          Printf.eprintf "fastsim client: %s\n" m;
          1)
  in
  Cmd.v
    (Cmd.info "ping" ~doc:"check that the daemon answers")
    Term.(const ping $ address_arg $ client_retries_arg)

let client_shutdown_cmd =
  let shutdown address retries =
    with_client address retries (fun c ->
        match Fastsim_serve.Client.shutdown c ~id:"cli" with
        | Ok () -> 0
        | Error m ->
          Printf.eprintf "fastsim client: %s\n" m;
          1)
  in
  Cmd.v
    (Cmd.info "shutdown" ~doc:"ask the daemon to drain and exit")
    Term.(const shutdown $ address_arg $ client_retries_arg)

let client_cmd =
  Cmd.group
    (Cmd.info "client"
       ~doc:"talk to a running fastsim daemon"
       ~man:
         [ `S Manpage.s_description;
           `P
             "Submits requests to a daemon started with $(b,fastsim \
              serve). Every subcommand takes the daemon $(i,ADDRESS) as \
              its first argument." ])
    [ client_run_cmd; client_stats_cmd; client_metrics_cmd;
      client_trace_cmd; top_cmd; client_ping_cmd; client_shutdown_cmd ]

let loadtest_cmd =
  let loadtest backend jobs clients requests workloads scale budget json
      quiet =
    let be, transport = backend in
    let cfg =
      { Fastsim_serve.Loadtest.default with
        Fastsim_serve.Loadtest.backend = be;
        transport;
        jobs;
        clients;
        requests_per_client = requests;
        workloads =
          (match workloads with
           | [] -> Fastsim_serve.Loadtest.default.Fastsim_serve.Loadtest.workloads
           | l -> l);
        scale;
        registry_budget = budget }
    in
    let progress m = if not quiet then Printf.eprintf "loadtest: %s\n%!" m in
    match Fastsim_serve.Loadtest.run ~progress cfg with
    | Error m ->
      Printf.eprintf "fastsim loadtest: %s\n" m;
      1
    | Ok r ->
      let j = Fastsim_serve.Loadtest.report_to_json r in
      (match json with
       | None -> print_endline (Fastsim_obs.Json.to_string j)
       | Some path ->
         let oc = open_out path in
         Fun.protect
           ~finally:(fun () -> close_out oc)
           (fun () ->
             Fastsim_obs.Json.to_channel oc j;
             output_char oc '\n');
         if not quiet then
           Printf.eprintf "loadtest: report written to %s\n%!" path);
      if r.Fastsim_serve.Loadtest.lt_divergent > 0 then begin
        Printf.eprintf
          "fastsim loadtest: %d workload(s) diverged from direct runs\n"
          r.Fastsim_serve.Loadtest.lt_divergent;
        1
      end
      else if
        r.Fastsim_serve.Loadtest.lt_cold.Fastsim_serve.Loadtest.ph_errors > 0
        || r.Fastsim_serve.Loadtest.lt_warm.Fastsim_serve.Loadtest.ph_errors
           > 0
      then begin
        Printf.eprintf "fastsim loadtest: request errors during the run\n";
        1
      end
      else 0
  in
  let backend_arg =
    Arg.(
      value
      & opt (enum backend_enum) (`Fleet, `Process)
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            "Daemon backend under test: $(b,fleet) (default), \
             $(b,fleet-domains), $(b,fork) or $(b,inline).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 2
      & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Daemon worker count.")
  in
  let clients_arg =
    Arg.(
      value & opt int 100
      & info [ "clients"; "c" ] ~docv:"N"
          ~doc:"Concurrent client connections.")
  in
  let requests_arg =
    Arg.(
      value & opt int 2
      & info [ "requests"; "n" ] ~docv:"N"
          ~doc:"Requests per client per phase (cold and warm).")
  in
  let workloads_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "workloads"; "w" ] ~docv:"W,W,..."
          ~doc:
            "Workloads to request, assigned to clients round-robin \
             (default li,compress,go).")
  in
  let scale_arg =
    Arg.(
      value & opt (some int) None
      & info [ "scale" ] ~docv:"N"
          ~doc:"Workload scale (default: each workload's test scale).")
  in
  let budget_arg =
    Arg.(
      value & opt (some int) None
      & info [ "registry-budget" ] ~docv:"BYTES"
          ~doc:"Daemon warm-cache byte budget (exercises LRU spill).")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the report JSON to $(i,FILE) instead of stdout \
             (progress always goes to stderr).")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No progress lines.")
  in
  Cmd.v
    (Cmd.info "loadtest"
       ~doc:"benchmark a daemon backend under concurrent load"
       ~man:
         [ `S Manpage.s_description;
           `P
             "Forks a private daemon, opens $(b,--clients) concurrent \
              connections and drives two measured phases of \
              $(b,--requests) fast-engine runs each: cold (fresh \
              daemon), then warm (repeat requests against the warm \
              p-action-cache registry). Reports req/s and latency \
              percentiles per phase, and verifies every response is \
              bit-identical to a direct in-process run with zero \
              fast/slow cycle divergence (non-zero exits the command \
              with status 1)." ])
    Term.(
      const loadtest $ backend_arg $ jobs_arg $ clients_arg $ requests_arg
      $ workloads_arg $ scale_arg $ budget_arg $ json_arg $ quiet_arg)

let () =
  let doc = "FastSim: out-of-order processor simulation with memoization" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "fastsim" ~doc)
          [ run_cmd; list_cmd; disasm_cmd; asm_cmd; trace_cmd; profile_cmd;
            spec_cmd; sweep_cmd; fuzz_cmd; serve_cmd; client_cmd; top_cmd;
            loadtest_cmd ]))
