(* fastsim: command-line front end.

     fastsim list                         all workloads
     fastsim run go --engine fast         simulate a workload
     fastsim run gcc --engine all --scale 50
     fastsim disasm perl                  disassemble a workload *)

open Cmdliner

let workload_conv =
  let parse s =
    match Workloads.Suite.find s with
    | w -> Ok w
    | exception Not_found ->
      Error (`Msg (Printf.sprintf "unknown workload %S (try `fastsim list')" s))
  in
  let print ppf (w : Workloads.Workload.t) = Format.fprintf ppf "%s" w.name in
  Arg.conv (parse, print)

let workload_arg =
  Arg.(
    required
    & pos 0 (some workload_conv) None
    & info [] ~docv:"WORKLOAD" ~doc:"Workload name, e.g. go or 099.go.")

let scale_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "scale" ] ~docv:"N" ~doc:"Iteration scale (default: per-workload).")

let engine_arg =
  Arg.(
    value
    & opt (enum [ ("fast", `Fast); ("slow", `Slow); ("baseline", `Baseline);
                  ("functional", `Functional); ("all", `All) ])
        `Fast
    & info [ "engine"; "e" ] ~docv:"ENGINE"
        ~doc:
          "Simulation engine: $(b,fast) (memoized), $(b,slow) (detailed \
           every cycle), $(b,baseline) (SimpleScalar-style), \
           $(b,functional), or $(b,all).")

let policy_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:
          "P-action cache policy: $(b,unbounded), $(b,flush:BYTES), \
           $(b,copy:BYTES), or $(b,gen:NURSERY:TOTAL).")

let predictor_arg =
  Arg.(
    value
    & opt (enum [ ("standard", Fastsim.Sim.Standard);
                  ("not-taken", Fastsim.Sim.Not_taken);
                  ("taken", Fastsim.Sim.Taken) ])
        Fastsim.Sim.Standard
    & info [ "predictor" ] ~docv:"PRED"
        ~doc:"Branch predictor: $(b,standard), $(b,not-taken), $(b,taken).")

let tiny_cache_arg =
  Arg.(
    value & flag
    & info [ "tiny-cache" ] ~doc:"Use the tiny cache configuration.")

let save_pcache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-pcache" ] ~docv:"FILE"
        ~doc:"After a fast run, persist the p-action cache to $(docv).")

let load_pcache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "load-pcache" ] ~docv:"FILE"
        ~doc:
          "Warm-start the fast engine from a p-action cache saved by a \
           previous run of the same workload and scale.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a structured event trace of the run to $(docv). The \
           default format is Chrome $(b,trace_event) JSON — load it in \
           Perfetto (ui.perfetto.dev) or chrome://tracing. Works with \
           both engines: under memoization, fast-forwarded regions emit \
           synthetic events reconstructed from the replayed action \
           chains.")

let trace_format_arg =
  Arg.(
    value
    & opt (enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ]) `Chrome
    & info [ "trace-format" ] ~docv:"FMT"
        ~doc:
          "Trace file format: $(b,chrome) (trace_event JSON for \
           Perfetto) or $(b,jsonl) (one event object per line, for jq).")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the metrics registry (counters, gauges, log2-bucketed \
           histograms) to $(docv) as JSON.")

let memo_report_arg =
  Arg.(
    value & flag
    & info [ "memo-report" ]
        ~doc:
          "After a fast run, print a detailed memoization report \
           (replay-episode statistics and p-action cache counters).")

let parse_policy = function
  | None -> Ok Memo.Pcache.Unbounded
  | Some s -> (
    match String.split_on_char ':' s with
    | [ "unbounded" ] -> Ok Memo.Pcache.Unbounded
    | [ "flush"; n ] -> Ok (Memo.Pcache.Flush_on_full (int_of_string n))
    | [ "copy"; n ] -> Ok (Memo.Pcache.Copying_gc (int_of_string n))
    | [ "gen"; n; t ] ->
      Ok
        (Memo.Pcache.Generational_gc
           { nursery = int_of_string n; total = int_of_string t })
    | _ -> Error (`Msg (Printf.sprintf "bad policy %S" s)))

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let print_result name (r : Fastsim.Sim.result) t =
  Printf.printf "%s: %d cycles, %d retired (IPC %.2f) in %.2fs (%.0f Kinst/s)\n"
    name r.cycles r.retired
    (float_of_int r.retired /. float_of_int r.cycles)
    t
    (float_of_int r.retired /. t /. 1000.);
  Printf.printf
    "  branches: %d cond (%.1f%% mispredicted), %d indirect (%d misfetched), \
     %d wrong-path insts\n"
    r.branches.conditionals
    (100.
    *. float_of_int r.branches.mispredicted
    /. float_of_int (max 1 r.branches.conditionals))
    r.branches.indirects r.branches.misfetched r.wrong_path_insts;
  Printf.printf "  cache: %d/%d L1, %d/%d L2 hits/misses\n" r.cache.l1_hits
    r.cache.l1_misses r.cache.l2_hits r.cache.l2_misses;
  let mix = r.retired_by_class in
  Printf.printf "  mix:";
  List.iter
    (fun fu ->
      let n = mix.(Isa.Instr.fu_index fu) in
      if n > 0 then
        Printf.printf " %s %.1f%%" (Isa.Instr.fu_name fu)
          (100. *. float_of_int n /. float_of_int r.retired))
    [ Isa.Instr.Fu_int_alu; Fu_int_mul; Fu_int_div; Fu_fp_add; Fu_fp_mul;
      Fu_fp_div; Fu_fp_sqrt; Fu_mem; Fu_branch ];
  print_newline ();
  match (r.memo, r.pcache) with
  | Some m, Some p ->
    Printf.printf
      "  memo: %.3f%% detailed, %d configs, %d actions, %.1f KB peak, \
       avg chain %.0f\n"
      (100. *. Memo.Stats.detailed_fraction m)
      p.static_configs p.static_actions
      (float_of_int p.peak_modeled_bytes /. 1024.)
      (Memo.Stats.avg_chain m)
  | _ -> ()

(* --memo-report: the long-form version of the one-line memo summary. *)
let print_memo_report (r : Fastsim.Sim.result) =
  match (r.memo, r.pcache) with
  | Some m, Some p ->
    let pct a b = 100. *. float_of_int a /. float_of_int (max 1 b) in
    Printf.printf "memoization report\n";
    Printf.printf "  dynamic (Tables 4-5)\n";
    Printf.printf "    %-28s %12d  (%5.2f%%)\n" "detailed cycles"
      m.Memo.Stats.detailed_cycles
      (pct m.detailed_cycles (Memo.Stats.total_cycles m));
    Printf.printf "    %-28s %12d  (%5.2f%%)\n" "replayed cycles"
      m.replayed_cycles
      (pct m.replayed_cycles (Memo.Stats.total_cycles m));
    Printf.printf "    %-28s %12d  (%5.2f%%)\n" "detailed retired"
      m.detailed_retired
      (100. *. Memo.Stats.detailed_fraction m);
    Printf.printf "    %-28s %12d  (%5.2f%%)\n" "replayed retired"
      m.replayed_retired
      (pct m.replayed_retired (Memo.Stats.total_retired m));
    Printf.printf "    %-28s %12d\n" "actions replayed" m.actions_replayed;
    Printf.printf "    %-28s %12d\n" "groups replayed" m.groups_replayed;
    Printf.printf "    %-28s %12d\n" "replay episodes" m.episodes;
    Printf.printf "    %-28s %12.1f\n" "avg chain length"
      (Memo.Stats.avg_chain m);
    Printf.printf "    %-28s %12d\n" "max chain length" m.chain_max;
    Printf.printf "    %-28s %12d\n" "detailed (re)entries"
      m.detailed_entries;
    Printf.printf "  p-action cache\n";
    Printf.printf "    %-28s %12d\n" "static configs" p.static_configs;
    Printf.printf "    %-28s %12d\n" "static actions" p.static_actions;
    Printf.printf "    %-28s %12d\n" "live configs" p.live_configs;
    Printf.printf "    %-28s %12.1f KB\n" "modeled size"
      (float_of_int p.modeled_bytes /. 1024.);
    Printf.printf "    %-28s %12.1f KB\n" "peak modeled size"
      (float_of_int p.peak_modeled_bytes /. 1024.);
    Printf.printf "    %-28s %12d\n" "flushes" p.flushes;
    Printf.printf "    %-28s %12d\n" "minor collections"
      p.minor_collections;
    Printf.printf "    %-28s %12d\n" "full collections" p.full_collections;
    if p.minor_collections + p.full_collections > 0 then
      Printf.printf "    %-28s %d / %d\n" "last GC survivors"
        p.last_gc_survivors p.last_gc_population
  | _ ->
    Printf.printf
      "memo report: no memoization statistics (not a fast-engine run)\n"

let run_cmd =
  let run (w : Workloads.Workload.t) scale engine policy predictor tiny
      save_pcache load_pcache trace_out trace_format metrics_out memo_report =
    match parse_policy policy with
    | Error (`Msg m) -> prerr_endline m; 1
    | Ok policy ->
      let scale = Option.value scale ~default:w.default_scale in
      let prog = w.build scale in
      let cache_config =
        if tiny then Some Cachesim.Config.tiny else None
      in
      Printf.printf "%s (scale %d): %s\n" w.name scale w.description;
      (* Observability is attached only when an output was requested, so a
         plain run pays nothing. With --engine all the instruments are
         shared: the trace then contains both engines' runs back to back. *)
      let obs =
        match (trace_out, metrics_out) with
        | None, None -> None
        | _ ->
          Some
            (Fastsim_obs.Ctx.create
               ?trace:
                 (Option.map
                    (fun _ -> Fastsim_obs.Trace.create ())
                    trace_out)
               ?metrics:
                 (Option.map
                    (fun _ -> Fastsim_obs.Metrics.create ())
                    metrics_out)
               ())
      in
      let write_obs_files () =
        (match (trace_out, Fastsim_obs.Ctx.trace obs) with
         | Some path, Some tr ->
           (match trace_format with
            | `Chrome -> Fastsim_obs.Export.write_chrome_file path tr
            | `Jsonl -> Fastsim_obs.Export.write_jsonl_file path tr);
           Printf.printf "trace: %d events written to %s%s\n"
             (Fastsim_obs.Trace.length tr)
             path
             (let d = Fastsim_obs.Trace.dropped tr in
              if d > 0 then
                Printf.sprintf " (%d oldest events dropped by the ring)" d
              else "")
         | _ -> ());
        match (metrics_out, Fastsim_obs.Ctx.metrics obs) with
        | Some path, Some m ->
          Fastsim_obs.Export.write_metrics_file path m;
          Printf.printf "metrics written to %s\n" path
        | _ -> ()
      in
      let run_fast () =
        let pcache =
          match load_pcache with
          | Some path ->
            Printf.printf "warm-starting from %s\n" path;
            Memo.Persist.load_file ~program:prog path
          | None -> Memo.Pcache.create ~policy ()
        in
        let r, t =
          time (fun () ->
              Fastsim.Sim.fast_sim ?cache_config ~pcache ~predictor ?obs prog)
        in
        print_result "FastSim" r t;
        if memo_report then print_memo_report r;
        (match save_pcache with
         | Some path ->
           Memo.Persist.save_file pcache ~program:prog path;
           Printf.printf "p-action cache saved to %s\n" path
         | None -> ());
        r
      in
      let run_slow () =
        let r, t =
          time (fun () ->
              Fastsim.Sim.slow_sim ?cache_config ~predictor ?obs prog)
        in
        print_result "SlowSim" r t;
        (r, t)
      in
      let run_base () =
        let r, t = time (fun () -> Baseline.run ?cache_config prog) in
        Printf.printf
          "SimpleScalar-style: %d cycles, %d retired in %.2fs (%.0f \
           Kinst/s), %d mispredicts\n"
          r.Baseline.cycles r.Baseline.retired t
          (float_of_int r.Baseline.retired /. t /. 1000.)
          r.Baseline.mispredicts
      in
      (match engine with
       | `Fast -> ignore (run_fast () : Fastsim.Sim.result)
       | `Slow ->
         let r, _ = run_slow () in
         if memo_report then print_memo_report r
       | `Baseline -> run_base ()
       | `Functional ->
         let (_, _, n), t = time (fun () -> Fastsim.Sim.functional prog) in
         Printf.printf "functional: %d instructions in %.2fs\n" n t
       | `All ->
         let slow, t_slow = run_slow () in
         let fast = run_fast () in
         run_base ();
         assert (slow.Fastsim.Sim.cycles = fast.Fastsim.Sim.cycles);
         Printf.printf "memoization speedup: effectively identical results, \
                        see times above (slow %.2fs)\n" t_slow);
      (try write_obs_files (); 0
       with Sys_error m ->
         Printf.eprintf "fastsim: cannot write output: %s\n" m;
         1)
  in
  let doc = "simulate a workload" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ workload_arg $ scale_arg $ engine_arg $ policy_arg
      $ predictor_arg $ tiny_cache_arg $ save_pcache_arg $ load_pcache_arg
      $ trace_out_arg $ trace_format_arg $ metrics_out_arg $ memo_report_arg)

let list_cmd =
  let list () =
    List.iter
      (fun (w : Workloads.Workload.t) ->
        Printf.printf "%-14s %-8s %s\n" w.name
          (match w.category with
           | Workloads.Workload.Integer -> "int"
           | Workloads.Workload.Floating -> "fp")
          w.description)
      Workloads.Suite.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"list the benchmark workloads")
    Term.(const list $ const ())

let disasm_cmd =
  let disasm (w : Workloads.Workload.t) scale =
    let scale = Option.value scale ~default:w.test_scale in
    let prog = w.build scale in
    Format.printf "%a" Isa.Program.pp_listing prog;
    0
  in
  Cmd.v (Cmd.info "disasm" ~doc:"disassemble a workload's program")
    Term.(const disasm $ workload_arg $ scale_arg)

let asm_cmd =
  let asm file engine =
    let source =
      let ic = open_in file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    match Isa.Parse.program source with
    | exception Isa.Parse.Error { line; message } ->
      Printf.eprintf "%s:%d: %s\n" file line message;
      1
    | exception Isa.Asm.Error m ->
      Printf.eprintf "%s: %s\n" file m;
      1
    | prog -> (
      match engine with
      | `Functional ->
        let (st, _, n), t = time (fun () -> Fastsim.Sim.functional prog) in
        Printf.printf "functional: %d instructions in %.3fs\n" n t;
        Printf.printf "  r1-r9: ";
        for r = 1 to 9 do
          Printf.printf "%d " (Emu.Arch_state.get_i st r)
        done;
        print_newline ();
        0
      | `Fast ->
        let r, t = time (fun () -> Fastsim.Sim.fast_sim prog) in
        print_result "FastSim" r t;
        0
      | `Slow ->
        let r, t = time (fun () -> Fastsim.Sim.slow_sim prog) in
        print_result "SlowSim" r t;
        0
      | `Baseline ->
        let r, t = time (fun () -> Baseline.run prog) in
        Printf.printf "baseline: %d cycles, %d retired in %.3fs\n"
          r.Baseline.cycles r.Baseline.retired t;
        0
      | `All ->
        let s, ts = time (fun () -> Fastsim.Sim.slow_sim prog) in
        print_result "SlowSim" s ts;
        let f, tf = time (fun () -> Fastsim.Sim.fast_sim prog) in
        print_result "FastSim" f tf;
        assert (s.Fastsim.Sim.cycles = f.Fastsim.Sim.cycles);
        0)
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE.s" ~doc:"Assembly source file.")
  in
  Cmd.v
    (Cmd.info "asm" ~doc:"assemble and simulate a textual assembly file")
    Term.(const asm $ file_arg $ engine_arg)

let trace_cmd =
  let trace (w : Workloads.Workload.t) scale from count =
    let scale = Option.value scale ~default:w.test_scale in
    let prog = w.build scale in
    Printf.printf "%s (scale %d): pipeline trace, cycles %d..%d\n" w.name
      scale from
      (from + count - 1);
    let upto = from + count in
    let observer cycle uarch (r : Uarch.Detailed.cycle_result) =
      if cycle >= from && cycle < upto then begin
        Printf.printf "\n=== cycle %d: retired %d, %d interaction(s)\n"
          cycle r.Uarch.Detailed.retired r.Uarch.Detailed.interactions;
        Format.printf "%a@?" Uarch.Detailed.dump uarch
      end
    in
    (try
       ignore
         (Fastsim.Sim.slow_sim ~max_cycles:(upto + 1_000_000) ~observer prog
           : Fastsim.Sim.result)
     with Fastsim.Sim.Deadlock _ -> ());
    0
  in
  let from_arg =
    Arg.(
      value & opt int 0
      & info [ "from" ] ~docv:"CYCLE" ~doc:"First cycle to print.")
  in
  let count_arg =
    Arg.(
      value & opt int 20
      & info [ "cycles"; "n" ] ~docv:"N" ~doc:"Number of cycles to print.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"print a cycle-by-cycle pipeline trace (detailed simulation)")
    Term.(const trace $ workload_arg $ scale_arg $ from_arg $ count_arg)

let profile_cmd =
  let profile (w : Workloads.Workload.t) scale engine policy predictor tiny =
    match parse_policy policy with
    | Error (`Msg m) -> prerr_endline m; 1
    | Ok policy ->
      let scale = Option.value scale ~default:w.default_scale in
      let prog = w.build scale in
      let cache_config = if tiny then Some Cachesim.Config.tiny else None in
      Printf.printf "%s (scale %d): host-time profile\n" w.name scale;
      (* One profiler per engine run, so the tables are independently
         meaningful (phase seconds sum to that run's wall clock). *)
      let profiled name f =
        let prof = Fastsim_obs.Profile.create () in
        let obs = Fastsim_obs.Ctx.create ~profile:prof () in
        let (r : Fastsim.Sim.result) = f obs in
        Printf.printf "\n%s: %d cycles, %d retired\n" name r.cycles r.retired;
        Format.printf "%a@?" Fastsim_obs.Profile.pp prof
      in
      let fast obs =
        Fastsim.Sim.fast_sim ?cache_config ~policy ~predictor ~obs prog
      in
      let slow obs =
        Fastsim.Sim.slow_sim ?cache_config ~predictor ~obs prog
      in
      (match engine with
       | `Fast -> profiled "FastSim" fast
       | `Slow -> profiled "SlowSim" slow
       | `All ->
         profiled "SlowSim" slow;
         profiled "FastSim" fast);
      0
  in
  let engine_arg =
    Arg.(
      value
      & opt (enum [ ("fast", `Fast); ("slow", `Slow); ("all", `All) ]) `Fast
      & info [ "engine"; "e" ] ~docv:"ENGINE"
          ~doc:"Engine to profile: $(b,fast), $(b,slow), or $(b,all).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "partition a run's host wall-clock time into simulator phases \
          (detailed / replay / cachesim / emulation)")
    Term.(
      const profile $ workload_arg $ scale_arg $ engine_arg $ policy_arg
      $ predictor_arg $ tiny_cache_arg)

let () =
  let doc = "FastSim: out-of-order processor simulation with memoization" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "fastsim" ~doc)
          [ run_cmd; list_cmd; disasm_cmd; asm_cmd; trace_cmd; profile_cmd ]))
