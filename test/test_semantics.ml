(* Golden-model property tests: for every ALU/mul/div operation, generate
   random operands, compute the expected 32-bit result independently here
   (with Int32 arithmetic, a different mechanism than the emulator's
   int-based one), and check the emulator agrees. *)

module I = Isa.Instr

(* Independent 32-bit reference semantics, via Int32. *)
let reference_alu (op : I.alu_op) a b =
  let a32 = Int32.of_int a and b32 = Int32.of_int b in
  let r =
    match op with
    | I.Add -> Int32.add a32 b32
    | I.Sub -> Int32.sub a32 b32
    | I.And -> Int32.logand a32 b32
    | I.Or -> Int32.logor a32 b32
    | I.Xor -> Int32.logxor a32 b32
    | I.Sll -> Int32.shift_left a32 (b land 31)
    | I.Srl -> Int32.shift_right_logical a32 (b land 31)
    | I.Sra -> Int32.shift_right a32 (b land 31)
    | I.Slt -> if Int32.compare a32 b32 < 0 then 1l else 0l
    | I.Sltu ->
      if Int32.unsigned_compare a32 b32 < 0 then 1l else 0l
  in
  Int32.to_int r

let reference_mul a b = Int32.to_int (Int32.mul (Int32.of_int a) (Int32.of_int b))

let reference_div a b =
  if b = 0 then 0
  else Int32.to_int (Int32.div (Int32.of_int a) (Int32.of_int b))

let reference_rem a b =
  if b = 0 then a
  else Int32.to_int (Int32.rem (Int32.of_int a) (Int32.of_int b))

(* Runs one 3-register operation through the emulator. *)
let run_op the_insn a b =
  let prog =
    Workloads.Dsl.(assemble [ li 1 a; li 2 b; Isa.Asm.insn the_insn; halt ])
  in
  let st, _, _ = Emu.Emulator.run_functional prog in
  Emu.Arch_state.get_i st 3

let int32_gen =
  let trunc v = Int32.to_int (Int32.of_int v) in
  QCheck.make
    ~print:(fun (a, b) -> Printf.sprintf "(%d, %d)" a b)
    QCheck.Gen.(map2 (fun a b -> (trunc a, trunc b)) int int)

(* li only materialises canonical 32-bit values; normalise the operands. *)
let norm = Emu.Arch_state.norm32

let alu_props =
  List.map
    (fun (name, op) ->
      QCheck.Test.make
        ~name:(Printf.sprintf "%s matches Int32 reference" name)
        ~count:150 int32_gen
        (fun (a, b) ->
          let a = norm a and b = norm b in
          run_op (I.Alu (op, 3, 1, 2)) a b = reference_alu op a b))
    [ ("add", I.Add); ("sub", I.Sub); ("and", I.And); ("or", I.Or);
      ("xor", I.Xor); ("sll", I.Sll); ("srl", I.Srl); ("sra", I.Sra);
      ("slt", I.Slt); ("sltu", I.Sltu) ]

let mul_prop =
  QCheck.Test.make ~name:"mul matches Int32 reference" ~count:200 int32_gen
    (fun (a, b) ->
      let a = norm a and b = norm b in
      run_op (I.Mul (3, 1, 2)) a b = reference_mul a b)

let div_prop =
  QCheck.Test.make ~name:"div matches Int32 reference" ~count:200 int32_gen
    (fun (a, b) ->
      let a = norm a and b = norm b in
      (* Int32.div traps on min_int/-1 in the reference; the emulator
         wraps. Skip that single input pair here and pin it in a unit
         test below. *)
      QCheck.assume (not (a = Int32.to_int Int32.min_int && b = -1));
      run_op (I.Div (3, 1, 2)) a b = reference_div a b
      && run_op (I.Rem (3, 1, 2)) a b = reference_rem a b)

let test_div_overflow_case () =
  (* min_int32 / -1 wraps to min_int32 in two's complement *)
  let v = run_op (I.Div (3, 1, 2)) (-2147483648) (-1) in
  Alcotest.(check int) "min/-1 wraps" (-2147483648) v;
  let r = run_op (I.Rem (3, 1, 2)) (-2147483648) (-1) in
  Alcotest.(check int) "rem min/-1" 0 r

(* FP semantics against OCaml's own doubles (same IEEE hardware, but the
   emulator path goes through memory loads/stores of raw bits). *)
let fp_prop =
  QCheck.Test.make ~name:"fp ops match OCaml doubles" ~count:150
    QCheck.(pair (float_bound_exclusive 1e6) (float_bound_exclusive 1e6))
    (fun (a, b) ->
      let prog =
        Workloads.Dsl.(
          assemble
            [ data "ops" [ Doubles [ a; b ] ];
              la 1 "ops";
              fld 0 1 0;
              fld 1 1 8;
              fadd 2 0 1;
              fsub 3 0 1;
              fmul 4 0 1;
              fdiv 5 0 1;
              fsqrt 6 0;
              halt ])
      in
      let st, _, _ = Emu.Emulator.run_functional prog in
      let got r = Int64.bits_of_float (Emu.Arch_state.get_f st r) in
      got 2 = Int64.bits_of_float (a +. b)
      && got 3 = Int64.bits_of_float (a -. b)
      && got 4 = Int64.bits_of_float (a *. b)
      && got 5 = Int64.bits_of_float (a /. b)
      && got 6 = Int64.bits_of_float (Float.sqrt a))

(* Memory round trips with mixed widths at random (aligned) offsets. *)
let mixed_width_prop =
  QCheck.Test.make ~name:"mixed-width store/load round trips" ~count:200
    QCheck.(triple (int_bound 60) int (int_bound 2))
    (fun (off4, v, width) ->
      let off = off4 * 4 in
      let v = norm v in
      let store, load, mask =
        match width with
        | 0 -> (I.Sb, I.Lbu, 0xff)
        | 1 -> (I.Sh, I.Lhu, 0xffff)
        | _ -> (I.Sw, I.Lw, -1)
      in
      let prog =
        Workloads.Dsl.(
          assemble
            [ data "buf" [ Space 256 ];
              la 1 "buf";
              li 2 v;
              Isa.Asm.insn (I.Store (store, 2, 1, off));
              Isa.Asm.insn (I.Load (load, 3, 1, off));
              halt ])
      in
      let st, _, _ = Emu.Emulator.run_functional prog in
      let expected =
        if mask = -1 then v else Emu.Arch_state.to_u32 v land mask
      in
      Emu.Arch_state.get_i st 3 = norm expected)

let suite =
  List.map QCheck_alcotest.to_alcotest alu_props
  @ [ QCheck_alcotest.to_alcotest mul_prop;
      QCheck_alcotest.to_alcotest div_prop;
      Alcotest.test_case "div overflow corner" `Quick test_div_overflow_case;
      QCheck_alcotest.to_alcotest fp_prop;
      QCheck_alcotest.to_alcotest mixed_width_prop ]
