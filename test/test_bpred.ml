(* Branch predictors: 2-bit counters, BTB, return-address stack. *)

let check = Alcotest.check

let test_twobit_saturation () =
  let t = Bpred.Twobit.create () in
  check Alcotest.int "entries" 512 (Bpred.Twobit.entries t);
  let pc = 0x1000 in
  (* starts weakly not-taken *)
  check Alcotest.bool "initial" false (Bpred.Twobit.predict t ~pc);
  Bpred.Twobit.train t ~pc ~taken:true;
  check Alcotest.bool "one taken flips" true (Bpred.Twobit.predict t ~pc);
  Bpred.Twobit.train t ~pc ~taken:true;
  Bpred.Twobit.train t ~pc ~taken:true;
  (* saturated at 3: one not-taken keeps the taken prediction *)
  Bpred.Twobit.train t ~pc ~taken:false;
  check Alcotest.bool "hysteresis" true (Bpred.Twobit.predict t ~pc);
  Bpred.Twobit.train t ~pc ~taken:false;
  check Alcotest.bool "two not-taken flip" false (Bpred.Twobit.predict t ~pc)

let test_twobit_aliasing () =
  let t = Bpred.Twobit.create ~entries:512 () in
  (* pcs 512 words apart share an entry *)
  Bpred.Twobit.train t ~pc:0x1000 ~taken:true;
  check Alcotest.bool "alias" true
    (Bpred.Twobit.predict t ~pc:(0x1000 + (512 * 4)));
  check Alcotest.bool "distinct" false (Bpred.Twobit.predict t ~pc:0x1004)

let test_twobit_bad_size () =
  match Bpred.Twobit.create ~entries:100 () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_btb () =
  let t = Bpred.Btb.create () in
  check (Alcotest.option Alcotest.int) "cold miss" None
    (Bpred.Btb.predict t ~pc:0x2000);
  Bpred.Btb.train t ~pc:0x2000 ~target:0x5000;
  check (Alcotest.option Alcotest.int) "hit" (Some 0x5000)
    (Bpred.Btb.predict t ~pc:0x2000);
  (* conflicting pc evicts (direct-mapped, tagged) *)
  Bpred.Btb.train t ~pc:(0x2000 + (64 * 4)) ~target:0x6000;
  check (Alcotest.option Alcotest.int) "evicted" None
    (Bpred.Btb.predict t ~pc:0x2000)

let test_ras () =
  let t = Bpred.Ras.create ~depth:4 () in
  check (Alcotest.option Alcotest.int) "empty pop" None (Bpred.Ras.pop t);
  Bpred.Ras.push t 0x100;
  Bpred.Ras.push t 0x200;
  check Alcotest.int "depth" 2 (Bpred.Ras.depth t);
  check (Alcotest.option Alcotest.int) "lifo" (Some 0x200) (Bpred.Ras.pop t);
  check (Alcotest.option Alcotest.int) "lifo 2" (Some 0x100)
    (Bpred.Ras.pop t);
  (* overflow wraps: oldest entries are lost *)
  List.iter (Bpred.Ras.push t) [ 1; 2; 3; 4; 5 ];
  check Alcotest.int "capped depth" 4 (Bpred.Ras.depth t);
  check (Alcotest.option Alcotest.int) "newest" (Some 5) (Bpred.Ras.pop t)

let test_standard_predicts_returns () =
  (* a call/return pair: with the RAS the return's target is predicted *)
  let prog =
    Workloads.Dsl.(
      assemble
        [ li 10 0;
          li 11 4;
          label "loop";
          call "fn";
          addi 10 10 1;
          blt 10 11 "loop";
          halt;
          label "fn";
          nop;
          ret ])
  in
  let hits = ref 0 and total = ref 0 in
  let emu = Emu.Emulator.create ~predictor:(Bpred.standard ~prog ()) prog in
  let rec drive () =
    match Emu.Emulator.next_event emu with
    | Emu.Emulator.Indirect { target; predicted; _ } ->
      incr total;
      if predicted = Some target then incr hits;
      drive ()
    | Emu.Emulator.Cond _ -> drive ()
    | Emu.Emulator.Wedged _ ->
      ignore (Emu.Emulator.rollback_to emu ~index:0 : int);
      drive ()
    | Emu.Emulator.Halted _ ->
      if Emu.Emulator.outstanding emu > 0 then begin
        ignore (Emu.Emulator.rollback_to emu ~index:0 : int);
        drive ()
      end
  in
  drive ();
  (* wrong-path execution can run extra returns before rollback *)
  check Alcotest.bool "returns seen" true (!total >= 4);
  check Alcotest.bool "RAS predicted most returns" true (!hits >= 3)

let test_static_predictors () =
  let nt = Bpred.static_not_taken () in
  let tk = Bpred.static_taken () in
  check Alcotest.bool "nt" false (nt.Emu.Predictor.predict_cond ~pc:0);
  check Alcotest.bool "tk" true (tk.Emu.Predictor.predict_cond ~pc:0)

let suite =
  [ Alcotest.test_case "2-bit saturation" `Quick test_twobit_saturation;
    Alcotest.test_case "2-bit aliasing" `Quick test_twobit_aliasing;
    Alcotest.test_case "2-bit size check" `Quick test_twobit_bad_size;
    Alcotest.test_case "btb" `Quick test_btb;
    Alcotest.test_case "ras" `Quick test_ras;
    Alcotest.test_case "standard predicts returns" `Quick
      test_standard_predicts_returns;
    Alcotest.test_case "static predictors" `Quick test_static_predictors ]
