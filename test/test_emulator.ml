(* Functional emulation: per-opcode semantics, control events, speculative
   execution and rollback. *)

module I = Isa.Instr

let check = Alcotest.check

(* Runs a short program functionally and returns (state, memory). *)
let run stmts =
  let prog = Workloads.Dsl.assemble (stmts @ [ Workloads.Dsl.halt ]) in
  let st, mem, _ = Emu.Emulator.run_functional prog in
  (st, mem)

let reg st r = Emu.Arch_state.get_i st r
let freg st r = Emu.Arch_state.get_f st r

let test_alu () =
  let st, _ =
    run
      Workloads.Dsl.
        [ li 1 7;
          li 2 (-3);
          insn (I.Alu (I.Add, 3, 1, 2));
          insn (I.Alu (I.Sub, 4, 1, 2));
          insn (I.Alu (I.And, 5, 1, 2));
          insn (I.Alu (I.Or, 6, 1, 2));
          insn (I.Alu (I.Xor, 7, 1, 2));
          insn (I.Alu (I.Slt, 8, 2, 1));
          insn (I.Alu (I.Sltu, 9, 2, 1));
          li 10 1;
          insn (I.Alu (I.Sll, 11, 1, 10));
          insn (I.Alu (I.Srl, 12, 2, 10));
          insn (I.Alu (I.Sra, 13, 2, 10)) ]
  in
  check Alcotest.int "add" 4 (reg st 3);
  check Alcotest.int "sub" 10 (reg st 4);
  check Alcotest.int "and" (7 land Emu.Arch_state.to_u32 (-3)) (reg st 5);
  check Alcotest.int "or" (Emu.Arch_state.norm32 (7 lor Emu.Arch_state.to_u32 (-3))) (reg st 6);
  check Alcotest.int "xor" (Emu.Arch_state.norm32 (7 lxor Emu.Arch_state.to_u32 (-3))) (reg st 7);
  check Alcotest.int "slt signed" 1 (reg st 8);
  check Alcotest.int "sltu unsigned" 0 (reg st 9);
  check Alcotest.int "sll" 14 (reg st 11);
  check Alcotest.int "srl" 0x7ffffffe (reg st 12);
  check Alcotest.int "sra" (-2) (reg st 13)

let test_wraparound () =
  let st, _ =
    run
      Workloads.Dsl.
        [ li 1 0x7fffffff;
          insn (I.Alui (I.Add, 2, 1, 1));     (* overflow wraps *)
          li 3 (-2147483648);
          insn (I.Alui (I.Add, 4, 3, -1)) ]
  in
  check Alcotest.int "wraps to min" (-2147483648) (reg st 2);
  check Alcotest.int "negative overflow" 0x7fffffff (reg st 4)

let test_muldiv () =
  let st, _ =
    run
      Workloads.Dsl.
        [ li 1 100000;
          li 2 100000;
          insn (I.Mul (3, 1, 2));    (* 10^10 wraps to low 32 bits *)
          li 4 17;
          li 5 5;
          insn (I.Div (6, 4, 5));
          insn (I.Rem (7, 4, 5));
          li 8 (-17);
          insn (I.Div (9, 8, 5));
          insn (I.Rem (10, 8, 5));
          insn (I.Div (11, 4, 0));   (* division by zero yields 0 *)
          insn (I.Rem (12, 4, 0)) ]  (* remainder by zero yields dividend *)
  in
  check Alcotest.int "mul wrap" (Emu.Arch_state.norm32 10_000_000_000)
    (reg st 3);
  check Alcotest.int "div" 3 (reg st 6);
  check Alcotest.int "rem" 2 (reg st 7);
  check Alcotest.int "div trunc" (-3) (reg st 9);
  check Alcotest.int "rem sign" (-2) (reg st 10);
  check Alcotest.int "div0" 0 (reg st 11);
  check Alcotest.int "rem0" 17 (reg st 12)

let test_loads_stores () =
  let st, mem =
    run
      Workloads.Dsl.
        [ data "buf" [ Space 64 ];
          la 1 "buf";
          li 2 (-1);
          sw 2 1 0;
          lbu 3 1 0;
          lb 4 1 0;
          lhu 5 1 0;
          lh 6 1 2;
          li 7 0x1234;
          sh 7 1 8;
          lhu 8 1 8;
          li 9 0xab;
          sb 9 1 12;
          lbu 10 1 12 ]
  in
  ignore mem;
  check Alcotest.int "lbu" 0xff (reg st 3);
  check Alcotest.int "lb" (-1) (reg st 4);
  check Alcotest.int "lhu" 0xffff (reg st 5);
  check Alcotest.int "lh" (-1) (reg st 6);
  check Alcotest.int "sh/lhu" 0x1234 (reg st 8);
  check Alcotest.int "sb/lbu" 0xab (reg st 10)

let test_fp () =
  let st, _ =
    run
      Workloads.Dsl.
        [ data "vals" [ Doubles [ 2.25; -4.0 ] ];
          la 1 "vals";
          fld 0 1 0;
          fld 1 1 8;
          fadd 2 0 1;
          fsub 3 0 1;
          fmul 4 0 1;
          fdiv 5 0 1;
          fsqrt 6 0;
          fneg 7 1;
          fabs_ 8 1;
          feq 2 0 0;
          flt 3 1 0;
          fle 4 0 1;
          li 5 (-7);
          cvt_if 9 5;
          cvt_fi 6 9 ]
  in
  check (Alcotest.float 1e-12) "fadd" (-1.75) (freg st 2);
  check (Alcotest.float 1e-12) "fsub" 6.25 (freg st 3);
  check (Alcotest.float 1e-12) "fmul" (-9.0) (freg st 4);
  check (Alcotest.float 1e-12) "fdiv" (-0.5625) (freg st 5);
  check (Alcotest.float 1e-12) "fsqrt" 1.5 (freg st 6);
  check (Alcotest.float 1e-12) "fneg" 4.0 (freg st 7);
  check (Alcotest.float 1e-12) "fabs" 4.0 (freg st 8);
  check Alcotest.int "feq" 1 (reg st 2);
  check Alcotest.int "flt" 1 (reg st 3);
  check Alcotest.int "fle" 0 (reg st 4);
  check (Alcotest.float 1e-12) "cvt_if" (-7.0) (freg st 9);
  check Alcotest.int "cvt_fi" (-7) (reg st 6)

let test_control () =
  let st, _ =
    run
      Workloads.Dsl.
        [ li 1 3;
          li 20 0;
          label "loop";
          addi 20 20 10;
          addi 1 1 (-1);
          bgt 1 0 "loop";
          call "fn";
          j "end_";
          label "fn";
          addi 20 20 100;
          ret;
          label "end_";
          addi 20 20 1000 ]
  in
  check Alcotest.int "loop + call + jump" 1130 (reg st 20)

let test_jump_tables () =
  let st, _ =
    run
      Workloads.Dsl.
        [ data "tbl" [ Label_words [ "c0"; "c1" ] ];
          la 1 "tbl";
          lw 2 1 4;
          insn (I.Jalr (25, 2));
          j "end_";
          label "c0";
          li 20 111;
          ret;
          label "c1";
          li 20 222;
          insn (I.Jr 25);
          label "end_";
          nop ]
  in
  check Alcotest.int "dispatched to c1" 222 (reg st 20)

let test_architectural_fault () =
  let prog =
    Workloads.Dsl.assemble Workloads.Dsl.[ li 1 0x1001; lw 2 1 0; halt ]
  in
  match Emu.Emulator.run_functional prog with
  | _ -> Alcotest.fail "expected Fault"
  | exception Emu.Emulator.Fault _ -> ()

(* --- speculative execution --- *)

let events_prog =
  (* one always-mispredicted-at-first branch plus wrong-path stores *)
  Workloads.Dsl.
    [ data "buf" [ Words [ 1; 2; 3; 4 ] ];
      la 1 "buf";
      li 2 1;
      beq 2 2 "taken";       (* actually taken; not-taken predicted *)
      li 3 99;               (* wrong path *)
      sw 3 1 0;
      sw 3 1 4;
      label "taken";
      lw 4 1 0 ]

let test_speculation_rollback () =
  let prog = Workloads.Dsl.assemble (events_prog @ [ Workloads.Dsl.halt ]) in
  let emu = Emu.Emulator.create prog in
  (* First event: the mispredicted branch. The emulator has already run
     down the wrong path (read-ahead), executing the wrong-path stores. *)
  (match Emu.Emulator.next_event emu with
   | Emu.Emulator.Cond { taken; predicted_taken; _ } ->
     check Alcotest.bool "taken" true taken;
     check Alcotest.bool "predicted not-taken" false predicted_taken
   | _ -> Alcotest.fail "expected Cond event");
  check Alcotest.int "one checkpoint" 1 (Emu.Emulator.outstanding emu);
  (* wrong-path stores hit memory... *)
  let mem = Emu.Emulator.memory emu in
  check Alcotest.int "wrong-path store visible" 99
    (Emu.Memory.load32 mem (Isa.Program.symbol prog "buf"));
  (* ...until the rollback restores the pre-store values *)
  let corrected = Emu.Emulator.rollback_to emu ~index:0 in
  check Alcotest.int "corrected pc" (Isa.Program.symbol prog "taken")
    corrected;
  check Alcotest.int "store undone" 1
    (Emu.Memory.load32 mem (Isa.Program.symbol prog "buf"));
  check Alcotest.int "no checkpoints" 0 (Emu.Emulator.outstanding emu)

let test_rollback_restores_registers () =
  let prog = Workloads.Dsl.assemble (events_prog @ [ Workloads.Dsl.halt ]) in
  let emu = Emu.Emulator.create prog in
  ignore (Emu.Emulator.next_event emu : Emu.Emulator.control);
  (* r3 was clobbered on the wrong path *)
  check Alcotest.int "wrong-path r3" 99
    (Emu.Arch_state.get_i (Emu.Emulator.state emu) 3);
  ignore (Emu.Emulator.rollback_to emu ~index:0 : int);
  check Alcotest.int "r3 restored" 0
    (Emu.Arch_state.get_i (Emu.Emulator.state emu) 3)

let test_wrong_path_wedge () =
  (* wrong path runs into a Halt: emulator wedges instead of halting *)
  let prog =
    Workloads.Dsl.(
      assemble
        [ li 2 1;
          beq 2 2 "on";   (* taken; predicted not-taken *)
          halt;           (* wrong path hits halt *)
          label "on";
          li 3 5;
          halt ])
  in
  let emu = Emu.Emulator.create prog in
  (match Emu.Emulator.next_event emu with
   | Emu.Emulator.Cond _ -> ()
   | _ -> Alcotest.fail "cond first");
  (match Emu.Emulator.next_event emu with
   | Emu.Emulator.Wedged _ -> ()
   | _ -> Alcotest.fail "expected wedge on wrong-path halt");
  check Alcotest.bool "wedged" true (Emu.Emulator.wedged emu);
  ignore (Emu.Emulator.rollback_to emu ~index:0 : int);
  check Alcotest.bool "unwedged" false (Emu.Emulator.wedged emu);
  (match Emu.Emulator.next_event emu with
   | Emu.Emulator.Halted _ -> ()
   | _ -> Alcotest.fail "real halt after rollback");
  check Alcotest.int "r3 set on correct path" 5
    (Emu.Arch_state.get_i (Emu.Emulator.state emu) 3)

let test_lq_sq_recording () =
  let prog =
    Workloads.Dsl.(
      assemble
        [ data "buf" [ Words [ 10; 20 ] ];
          la 1 "buf";
          lw 2 1 0;
          sw 2 1 4;
          li 3 1;
          beq 3 3 "end_";
          label "end_";
          halt ])
  in
  let emu = Emu.Emulator.create prog in
  ignore (Emu.Emulator.next_event emu : Emu.Emulator.control);
  let buf = Isa.Program.symbol prog "buf" in
  let l = Emu.Emulator.pop_load emu in
  check Alcotest.int "load addr" buf l.Emu.Emulator.l_addr;
  check Alcotest.int "load width" 4 l.Emu.Emulator.l_width;
  let s = Emu.Emulator.pop_store emu in
  check Alcotest.int "store addr" (buf + 4) s.Emu.Emulator.s_addr

(* Property: for random programs, speculative execution with immediate
   rollbacks reaches exactly the same final state as pure functional
   execution. *)
let spec_equals_functional_prop =
  QCheck.Test.make ~name:"speculation+rollback == functional" ~count:30
    QCheck.(int_bound 10_000)
    (fun seed ->
      let prog = Gen.program_of_seed seed in
      let fst_state, fst_mem, n = Emu.Emulator.run_functional prog in
      let emu = Emu.Emulator.create ~predictor:(Bpred.standard ~prog ()) prog in
      let steps = ref 0 in
      while (not (Emu.Emulator.halted emu)) && !steps < 10 * n + 1000 do
        incr steps;
        (match Emu.Emulator.next_event emu with
         | Emu.Emulator.Cond _ | Emu.Emulator.Indirect _ -> ()
         | Emu.Emulator.Halted _ -> ()
         | Emu.Emulator.Wedged _ -> ());
        (* resolve the oldest misprediction as soon as it exists *)
        if Emu.Emulator.outstanding emu > 0 then
          ignore (Emu.Emulator.rollback_to emu ~index:0 : int)
      done;
      Emu.Emulator.halted emu
      && Emu.Arch_state.equal fst_state (Emu.Emulator.state emu)
      && Emu.Emulator.insts_executed emu = n
      &&
      (* compare the scratch region's final contents *)
      let scratch = Isa.Program.symbol prog "scratch" in
      let mem = Emu.Emulator.memory emu in
      let ok = ref true in
      for i = 0 to 255 do
        if Emu.Memory.load32 mem (scratch + (4 * i))
           <> Emu.Memory.load32 fst_mem (scratch + (4 * i))
        then ok := false
      done;
      !ok)

let suite =
  [ Alcotest.test_case "alu ops" `Quick test_alu;
    Alcotest.test_case "wraparound" `Quick test_wraparound;
    Alcotest.test_case "mul/div/rem" `Quick test_muldiv;
    Alcotest.test_case "loads/stores" `Quick test_loads_stores;
    Alcotest.test_case "fp ops" `Quick test_fp;
    Alcotest.test_case "control flow" `Quick test_control;
    Alcotest.test_case "jump tables" `Quick test_jump_tables;
    Alcotest.test_case "architectural fault" `Quick test_architectural_fault;
    Alcotest.test_case "speculation rollback (memory)" `Quick
      test_speculation_rollback;
    Alcotest.test_case "speculation rollback (registers)" `Quick
      test_rollback_restores_registers;
    Alcotest.test_case "wrong-path wedge" `Quick test_wrong_path_wedge;
    Alcotest.test_case "lQ/sQ recording" `Quick test_lq_sq_recording;
    QCheck_alcotest.to_alcotest spec_equals_functional_prop ]
