(* Failure injection: malformed snapshots, corrupted caches, deadlocks,
   and driver limits all surface as the documented exceptions rather than
   silent wrong answers. *)

let check = Alcotest.check

let prog = (Workloads.Suite.find "li").Workloads.Workload.build 1

let test_snapshot_decode_rejects_garbage () =
  let bad k =
    match Uarch.Snapshot.decode prog ~capacity:32 k with
    | _ -> Alcotest.failf "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
    | exception Isa.Program.Fault _ -> ()
  in
  bad "";
  bad "short";
  (* plausible header, wrong length *)
  let b = Bytes.make 11 '\000' in
  Bytes.set b 5 (Char.chr 7);
  bad (Bytes.to_string b);
  (* bad fetch tag *)
  let b = Bytes.make 11 '\000' in
  Bytes.set b 0 (Char.chr 9);
  bad (Bytes.to_string b)

let test_snapshot_decode_rejects_foreign_addresses () =
  (* a well-formed key whose oldest address is outside this program *)
  let uarch = Uarch.Detailed.create prog in
  let other = (Workloads.Suite.find "go").Workloads.Workload.build 1 in
  ignore uarch;
  let uarch2 = Uarch.Detailed.create other in
  (* run a few cycles against a trivial oracle to get entries in flight *)
  let emu = Emu.Emulator.create ~predictor:(Bpred.standard ~prog:other ()) other in
  let cache = Cachesim.Hierarchy.create () in
  let oracle : Uarch.Oracle.t =
    { cache_load =
        (fun ~now ->
          let l = Emu.Emulator.pop_load emu in
          Cachesim.Hierarchy.load cache ~now ~addr:l.Emu.Emulator.l_addr);
      cache_store =
        (fun ~now ->
          let s = Emu.Emulator.pop_store emu in
          Cachesim.Hierarchy.store cache ~now ~addr:s.Emu.Emulator.s_addr);
      fetch_control =
        (fun () ->
          match Emu.Emulator.next_event emu with
          | Emu.Emulator.Cond { taken; predicted_taken; _ } ->
            Uarch.Oracle.C_cond
              { taken; mispredicted = taken <> predicted_taken }
          | Emu.Emulator.Indirect { target; predicted; _ } ->
            Uarch.Oracle.C_indirect { target; hit = predicted = Some target }
          | _ -> Uarch.Oracle.C_stalled);
      rollback =
        (fun ~index -> ignore (Emu.Emulator.rollback_to emu ~index : int)) }
  in
  for i = 0 to 9 do
    ignore
      (Uarch.Detailed.step_cycle uarch2 ~now:i oracle
        : Uarch.Detailed.cycle_result)
  done;
  let key = Uarch.Detailed.snapshot uarch2 in
  (* go's code segment is longer than li's at these scales, so go's
     addresses can exceed li's code segment. If they happen to be valid in
     [prog], decode succeeds but produces different instructions — the
     point is that it never crashes unpredictably. *)
  match Uarch.Snapshot.decode prog ~capacity:32 key with
  | _ -> ()
  | exception Isa.Program.Fault _ -> ()
  | exception Invalid_argument _ -> ()

let test_truncation_on_infinite_cond_loop () =
  (* an architecturally infinite loop (with control events, so the
     emulator keeps yielding): the cycle budget truncates the run — both
     engines stop at exactly the budget and agree on everything *)
  let p =
    Workloads.Dsl.(
      assemble [ li 1 1; label "spin"; nop; beq 1 1 "spin"; halt ])
  in
  let spec = Fastsim.Sim.Spec.(with_max_cycles 50_000 default) in
  let slow = Fastsim.Sim.run ~engine:`Slow spec p in
  let fast = Fastsim.Sim.run ~engine:`Fast spec p in
  check Alcotest.bool "slow truncated" true slow.Fastsim.Sim.truncated;
  check Alcotest.bool "fast truncated" true fast.Fastsim.Sim.truncated;
  check Alcotest.int "slow stops at budget" 50_000 slow.Fastsim.Sim.cycles;
  check Alcotest.int "fast stops at budget" 50_000 fast.Fastsim.Sim.cycles;
  check Alcotest.int "retired equal" slow.Fastsim.Sim.retired
    fast.Fastsim.Sim.retired

let test_max_cycles_limit () =
  let w = Workloads.Suite.find "compress" in
  let big = w.Workloads.Workload.build 50 in
  let spec = Fastsim.Sim.Spec.(with_max_cycles 1000 default) in
  let slow = Fastsim.Sim.run ~engine:`Slow spec big in
  let fast = Fastsim.Sim.run ~engine:`Fast spec big in
  check Alcotest.bool "slow truncated" true slow.Fastsim.Sim.truncated;
  check Alcotest.bool "fast truncated" true fast.Fastsim.Sim.truncated;
  check Alcotest.int "slow stops at budget" 1000 slow.Fastsim.Sim.cycles;
  check Alcotest.int "fast stops at budget" 1000 fast.Fastsim.Sim.cycles;
  check Alcotest.int "retired equal" slow.Fastsim.Sim.retired
    fast.Fastsim.Sim.retired;
  (* an ample budget must not mark the run truncated *)
  let full =
    Fastsim.Sim.run ~engine:`Slow
      Fastsim.Sim.Spec.(with_max_cycles 10_000_000 default)
      (w.Workloads.Workload.build 4)
  in
  check Alcotest.bool "ample budget not truncated" false
    full.Fastsim.Sim.truncated

let test_architectural_misalignment_faults () =
  let p =
    Workloads.Dsl.(assemble [ li 1 0x2002; lw 2 1 1; halt ])
  in
  List.iter
    (fun run ->
      match run p with
      | () -> Alcotest.fail "expected Fault"
      | exception Emu.Emulator.Fault _ -> ())
    [ (fun p -> ignore (Fastsim.Sim.functional p
                        : Emu.Arch_state.t * Emu.Memory.t * int));
      (fun p ->
        ignore
          (Fastsim.Sim.run ~engine:`Slow Fastsim.Sim.Spec.default p
            : Fastsim.Sim.result));
      (fun p ->
        ignore
          (Fastsim.Sim.run ~engine:`Fast Fastsim.Sim.Spec.default p
            : Fastsim.Sim.result));
      (fun p -> ignore (Baseline.run p : Baseline.result)) ]

let test_rollback_bad_index () =
  (* a branch-free program can have no outstanding checkpoints *)
  let p = Workloads.Dsl.(assemble [ nop; halt ]) in
  let emu = Emu.Emulator.create p in
  match Emu.Emulator.rollback_to emu ~index:0 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_pipeline_capacity_errors () =
  let iq = Uarch.Pipeline.create ~capacity:2 in
  let e () = Uarch.Pipeline.entry_of_addr prog prog.Isa.Program.code_base in
  Uarch.Pipeline.push iq (e ());
  Uarch.Pipeline.push iq (e ());
  (match Uarch.Pipeline.push iq (e ()) with
   | _ -> Alcotest.fail "expected full"
   | exception Invalid_argument _ -> ());
  check Alcotest.int "len" 2 (Uarch.Pipeline.length iq);
  (match Uarch.Pipeline.get iq 5 with
   | _ -> Alcotest.fail "expected bounds error"
   | exception Invalid_argument _ -> ());
  Uarch.Pipeline.truncate iq 0;
  match Uarch.Pipeline.pop iq with
  | _ -> Alcotest.fail "expected empty"
  | exception Invalid_argument _ -> ()

let suite =
  [ Alcotest.test_case "snapshot decode rejects garbage" `Quick
      test_snapshot_decode_rejects_garbage;
    Alcotest.test_case "snapshot decode vs foreign program" `Quick
      test_snapshot_decode_rejects_foreign_addresses;
    Alcotest.test_case "truncation on infinite cond loop" `Quick
      test_truncation_on_infinite_cond_loop;
    Alcotest.test_case "max-cycles limit" `Quick test_max_cycles_limit;
    Alcotest.test_case "architectural misalignment faults" `Quick
      test_architectural_misalignment_faults;
    Alcotest.test_case "rollback bad index" `Quick test_rollback_bad_index;
    Alcotest.test_case "pipeline capacity errors" `Quick
      test_pipeline_capacity_errors ]
