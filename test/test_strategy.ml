(* The differential harness for the strategy engines (docs/STRATEGY.md).

   The tentpole claim mirrors the paper's Fast ≡ Slow equivalence one
   level up: the time-parallel engine must produce results bit-identical
   to the serial engine it decomposes — every cycle count, every
   statistic, every final register — on every kernel, under both timing
   engines, over every fan-out backend, including truncation budgets that
   land mid-interval. The sampled engine is held to a different contract:
   exact architectural results, estimated timing statistics with
   deterministic error bounds. *)

let check = Alcotest.check

module Sim = Fastsim.Sim
module Spec = Sim.Spec
module Workload = Workloads.Workload

let spec = Spec.with_max_cycles 20_000_000 Spec.default

(* the sampled engine cannot bound cycles, so its tests run unbudgeted *)
let uspec = Spec.default

let build name =
  let w = Workloads.Suite.find name in
  w.Workload.build w.Workload.test_scale

(* Full bit-identity between a strategy result and its serial reference:
   every statistic the serial engines agree on, plus the architectural
   state. [memo]/[pcache] are engine diagnostics (None under strategies)
   and [provenance] is the strategy's own audit trail; both excluded. *)
let assert_identical ~ctx (serial : Sim.result) (r : Sim.result) =
  let ck name = check Alcotest.int (ctx ^ ": " ^ name) in
  ck "cycles" serial.cycles r.cycles;
  ck "retired" serial.retired r.retired;
  check
    Alcotest.(array int)
    (ctx ^ ": retired_by_class") serial.retired_by_class r.retired_by_class;
  ck "emulated_insts" serial.emulated_insts r.emulated_insts;
  ck "wrong_path_insts" serial.wrong_path_insts r.wrong_path_insts;
  ck "conditionals" serial.branches.conditionals r.branches.conditionals;
  ck "mispredicted" serial.branches.mispredicted r.branches.mispredicted;
  ck "indirects" serial.branches.indirects r.branches.indirects;
  ck "misfetched" serial.branches.misfetched r.branches.misfetched;
  ck "loads" serial.cache.loads r.cache.loads;
  ck "stores" serial.cache.stores r.cache.stores;
  ck "l1_hits" serial.cache.l1_hits r.cache.l1_hits;
  ck "l1_misses" serial.cache.l1_misses r.cache.l1_misses;
  ck "l2_hits" serial.cache.l2_hits r.cache.l2_hits;
  ck "l2_misses" serial.cache.l2_misses r.cache.l2_misses;
  ck "writebacks" serial.cache.writebacks r.cache.writebacks;
  ck "merged_misses" serial.cache.merged_misses r.cache.merged_misses;
  check Alcotest.bool (ctx ^ ": truncated") serial.truncated r.truncated;
  check Alcotest.bool (ctx ^ ": final_state") true
    (Emu.Arch_state.equal serial.final_state r.final_state)

let parallel ?fanout ~interval ~warmup () =
  Sim.Parallel
    { interval_insns = interval; warmup_insns = warmup; fanout }

let provenance ~ctx (r : Sim.result) =
  match r.Sim.provenance with
  | Some p -> p
  | None -> Alcotest.failf "%s: strategy result carries no provenance" ctx

(* ---- tentpole: stitched ≡ serial, all kernels × both engines -------- *)

let test_stitch_identity engine name () =
  let prog = build name in
  let serial = Sim.run ~engine spec prog in
  let interval = max 1 (serial.Sim.retired / 7) in
  let r =
    Sim.run ~strategy:(parallel ~interval ~warmup:(interval / 2) ())
      ~engine spec prog
  in
  let ctx = name in
  assert_identical ~ctx serial r;
  let p = provenance ~ctx r in
  check Alcotest.string (ctx ^ ": strategy") "parallel" p.Sim.prov_strategy;
  check Alcotest.(option string) (ctx ^ ": no fallback") None p.Sim.prov_fallback;
  check Alcotest.bool (ctx ^ ": split happened") true (p.Sim.prov_intervals >= 2);
  check Alcotest.int
    (ctx ^ ": intervals all settled")
    p.Sim.prov_intervals
    (p.Sim.prov_accepted + p.Sim.prov_repaired)

(* ---- pathological split: 1-instruction intervals -------------------- *)

let test_one_insn_intervals engine () =
  let prog = build "compress" in
  let serial = Sim.run ~engine spec prog in
  let r =
    Sim.run ~strategy:(parallel ~interval:1 ~warmup:0 ()) ~engine spec prog
  in
  assert_identical ~ctx:"K=1" serial r

(* ---- truncation budgets landing mid-interval ------------------------ *)

let test_truncation engine () =
  let prog = build "go" in
  let full = Sim.run ~engine spec prog in
  let interval = max 1 (full.Sim.retired / 5) in
  (* budgets straddling interval boundaries, including cycle 1 and a
     budget beyond completion *)
  let budgets =
    [ 1; full.Sim.cycles / 10; full.Sim.cycles / 2;
      (full.Sim.cycles * 9 / 10) + 1; full.Sim.cycles - 1; full.Sim.cycles;
      full.Sim.cycles + 1000 ]
  in
  List.iter
    (fun b ->
      let bspec = Spec.with_max_cycles b spec in
      let serial = Sim.run ~engine bspec prog in
      let r =
        Sim.run
          ~strategy:(parallel ~interval ~warmup:(interval / 2) ())
          ~engine bspec prog
      in
      assert_identical ~ctx:(Printf.sprintf "budget=%d" b) serial r)
    budgets

(* ---- pool-backed fan-outs ------------------------------------------- *)

let test_pool_fanout backend engine () =
  let prog = build "li" in
  let serial = Sim.run ~engine spec prog in
  let interval = max 1 (serial.Sim.retired / 5) in
  let fanout = Fastsim_exec.Strategy_pool.fanout ~backend ~jobs:3 () in
  let r =
    Sim.run
      ~strategy:(parallel ~fanout ~interval ~warmup:(interval / 2) ())
      ~engine spec prog
  in
  assert_identical ~ctx:(Fastsim_exec.Pool.backend_to_string backend) serial r

(* A fan-out whose workers all "crash" (return None): every interval is
   repaired serially, and the result is still exact. *)
let test_all_workers_lost () =
  let prog = build "ijpeg" in
  let serial = Sim.run ~engine:`Fast spec prog in
  let fanout =
    { Sim.f_map = (fun _f n -> Array.make n None);
      f_pcache_mode = `Inherit }
  in
  let interval = max 1 (serial.Sim.retired / 4) in
  let r =
    Sim.run
      ~strategy:(parallel ~fanout ~interval ~warmup:0 ())
      ~engine:`Fast spec prog
  in
  assert_identical ~ctx:"workers-lost" serial r;
  let p = provenance ~ctx:"workers-lost" r in
  check Alcotest.int "all repaired" p.Sim.prov_intervals p.Sim.prov_repaired

(* ---- emulator capture/restore round-trip ---------------------------- *)

(* Drains the emulator's event stream with an in-order consumer: every
   misprediction is repaired immediately (no pipeline is attached to do
   it with a delay), every event is logged. *)
let events_to_halt emu =
  let rec go acc n =
    if n > 500_000 then Alcotest.fail "event stream did not halt";
    match Emu.Emulator.next_event emu with
    | Emu.Emulator.Halted _ as e -> List.rev (e :: acc)
    | Emu.Emulator.Cond { taken; predicted_taken; _ } as e ->
      if taken <> predicted_taken then
        ignore (Emu.Emulator.rollback_to emu ~index:0 : int);
      go (e :: acc) (n + 1)
    | Emu.Emulator.Wedged _ as e ->
      ignore (Emu.Emulator.rollback_to emu ~index:0 : int);
      go (e :: acc) (n + 1)
    | e -> go (e :: acc) (n + 1)
  in
  go [] 0

let consume_events emu n =
  for _ = 1 to n do
    match Emu.Emulator.next_event emu with
    | Emu.Emulator.Cond { taken; predicted_taken; _ }
      when taken <> predicted_taken ->
      ignore (Emu.Emulator.rollback_to emu ~index:0 : int)
    | Emu.Emulator.Wedged _ ->
      ignore (Emu.Emulator.rollback_to emu ~index:0 : int)
    | _ -> ()
  done

let test_capture_restore_roundtrip () =
  let prog = build "m88ksim" in
  let h = Bpred.standard_handle ~prog () in
  let emu = Emu.Emulator.create ~predictor:h.Bpred.h_pred prog in
  (* advance into the middle of the run, with speculation under way *)
  consume_events emu 40;
  let cap = Emu.Emulator.capture emu in
  let pred = h.Bpred.h_save () in
  (* restore must be canonical-identical to the capture, immediately *)
  let h2 = Bpred.standard_handle ~prog () in
  h2.Bpred.h_load pred;
  let emu2 = Emu.Emulator.restore ~predictor:h2.Bpred.h_pred prog cap in
  check Alcotest.bool "re-capture is canonically identical" true
    (Emu.Emulator.Capture.canonical (Emu.Emulator.capture emu2)
    = Emu.Emulator.Capture.canonical cap);
  (* and the two continuations must produce the same event stream *)
  let original = events_to_halt emu in
  let restored = events_to_halt emu2 in
  check Alcotest.bool "continuations produce identical event streams" true
    (original = restored);
  check Alcotest.bool "continuations end in identical states" true
    (Emu.Arch_state.equal (Emu.Emulator.state emu) (Emu.Emulator.state emu2))

(* ---- the latent checkpoint hazard (regression) ----------------------

   Direct execution runs one control event ahead of the pipeline, so at
   almost any capture point a produced-but-unconsumed control event is
   pending — and the branch predictor was already trained when it was
   produced. A capture that drops that event (the "obvious" slimming of
   the checkpoint record) silently loses one control event: the restored
   continuation hands the pipeline a shifted event stream. The event must
   ride the capture verbatim. *)

let test_pending_event_hazard () =
  let prog = build "go" in
  let h = Bpred.standard_handle ~prog () in
  let emu = Emu.Emulator.create ~predictor:h.Bpred.h_pred prog in
  consume_events emu 25;
  let cap = Emu.Emulator.capture emu in
  let pred = h.Bpred.h_save () in
  (match cap.Emu.Emulator.Capture.c_pending with
  | Some _ -> ()
  | None ->
    Alcotest.fail "expected a pending read-ahead event at the capture point");
  let restore_and_run c =
    let h' = Bpred.standard_handle ~prog () in
    h'.Bpred.h_load pred;
    let emu' = Emu.Emulator.restore ~predictor:h'.Bpred.h_pred prog c in
    events_to_halt emu'
  in
  let exact = restore_and_run cap in
  let naive =
    restore_and_run { cap with Emu.Emulator.Capture.c_pending = None }
  in
  let reference = events_to_halt emu in
  check Alcotest.bool "verbatim pending: continuation is exact" true
    (exact = reference);
  check Alcotest.bool "dropped pending: continuation loses an event" false
    (naive = reference)

(* ---- sampled engine -------------------------------------------------- *)

let sampled_strategy serial =
  let t = serial.Sim.retired in
  Sim.Sampled
    { sample_insns = max 1 (t / 40);
      sample_period = max 1 (t / 10);
      warmup_insns = max 1 (t / 80) }

let test_sampled_exact_arch () =
  let prog = build "vortex" in
  let serial = Sim.run ~engine:`Fast uspec prog in
  let r = Sim.run ~strategy:(sampled_strategy serial) ~engine:`Fast uspec prog in
  check Alcotest.int "retired exact" serial.Sim.retired r.Sim.retired;
  check Alcotest.int "emulated exact" serial.Sim.emulated_insts
    r.Sim.emulated_insts;
  check
    Alcotest.(array int)
    "retired_by_class exact" serial.Sim.retired_by_class
    r.Sim.retired_by_class;
  check Alcotest.bool "final state exact" true
    (Emu.Arch_state.equal serial.Sim.final_state r.Sim.final_state);
  check Alcotest.bool "not truncated" false r.Sim.truncated;
  let p = provenance ~ctx:"sampled" r in
  check Alcotest.string "strategy" "sampled" p.Sim.prov_strategy;
  check Alcotest.(option string) "no fallback" None p.Sim.prov_fallback;
  check Alcotest.bool "several windows" true (p.Sim.prov_intervals >= 2);
  check Alcotest.bool "errors reported" true (p.Sim.prov_errors <> []);
  List.iter
    (fun (name, e) ->
      if not (e >= 0. && e <= 10.) then
        Alcotest.failf "error estimate %s = %g out of range" name e)
    p.Sim.prov_errors

let test_sampled_deterministic () =
  let prog = build "swim" in
  let serial = Sim.run ~engine:`Fast uspec prog in
  let strategy = sampled_strategy serial in
  let r1 = Sim.run ~strategy ~engine:`Fast uspec prog in
  let r2 = Sim.run ~strategy ~engine:`Fast uspec prog in
  check Alcotest.int "cycles deterministic" r1.Sim.cycles r2.Sim.cycles;
  let p1 = provenance ~ctx:"det1" r1 and p2 = provenance ~ctx:"det2" r2 in
  check Alcotest.bool "error estimates deterministic" true
    (p1.Sim.prov_errors = p2.Sim.prov_errors);
  (* fast and slow timing engines sample identically, so even the
     estimates agree between them *)
  let rs = Sim.run ~strategy ~engine:`Slow uspec prog in
  check Alcotest.int "fast/slow sampled agree" r1.Sim.cycles rs.Sim.cycles

let rel_err exact v =
  abs_float (float_of_int v -. float_of_int exact) /. float_of_int (max 1 exact)

let test_sampled_accuracy () =
  (* steady loop kernels: periodic sampling must land within a few percent
     of the exact cycle count *)
  List.iter
    (fun name ->
      let prog = build name in
      let serial = Sim.run ~engine:`Fast uspec prog in
      let r =
        Sim.run ~strategy:(sampled_strategy serial) ~engine:`Fast uspec prog
      in
      let e = rel_err serial.Sim.cycles r.Sim.cycles in
      if e > 0.05 then
        Alcotest.failf "%s: sampled cycle error %.1f%% exceeds 5%%" name
          (100. *. e))
    [ "tomcatv"; "swim"; "mgrid" ]

(* ---- warmup reduces cold-start bias --------------------------------- *)

let test_warmup_monotonicity () =
  (* a cache-sensitive kernel: sampling with no warmup sees cold-miss
     inflated cycle counts; a generous detailed warmup must not make the
     estimate worse *)
  let prog = build "su2cor" in
  let serial = Sim.run ~engine:`Fast uspec prog in
  let t = serial.Sim.retired in
  let run_with warmup =
    let r =
      Sim.run
        ~strategy:
          (Sim.Sampled
             { sample_insns = max 1 (t / 50);
               sample_period = max 1 (t / 12);
               warmup_insns = warmup })
        ~engine:`Fast uspec prog
    in
    rel_err serial.Sim.cycles r.Sim.cycles
  in
  let cold = run_with 0 in
  let warm = run_with (max 1 (t / 25)) in
  check Alcotest.bool
    (Printf.sprintf "warmup does not hurt (cold %.4f, warm %.4f)" cold warm)
    true
    (warm <= cold +. 0.002)

(* ---- fallbacks ------------------------------------------------------- *)

let test_fallbacks () =
  let prog = build "go" in
  let serial = Sim.run ~engine:`Fast spec prog in
  (* single interval: program shorter than the interval length *)
  let r =
    Sim.run
      ~strategy:(parallel ~interval:(serial.Sim.retired * 2) ~warmup:0 ())
      ~engine:`Fast spec prog
  in
  assert_identical ~ctx:"single-interval" serial r;
  check
    Alcotest.(option string)
    "single-interval fallback"
    (Some "single-interval")
    (provenance ~ctx:"single-interval" r).Sim.prov_fallback;
  (* baseline engine: strategies do not apply *)
  let sb = Sim.run ~engine:`Baseline spec prog in
  let rb =
    Sim.run ~strategy:(parallel ~interval:1000 ~warmup:0 ()) ~engine:`Baseline
      spec prog
  in
  check Alcotest.int "baseline cycles" sb.Sim.cycles rb.Sim.cycles;
  check
    Alcotest.(option string)
    "baseline fallback" (Some "baseline-engine")
    (provenance ~ctx:"baseline" rb).Sim.prov_fallback;
  (* sampled refuses bounded cycle budgets (it cannot bound them) *)
  let bspec = Spec.with_max_cycles (serial.Sim.cycles / 2) spec in
  let rs =
    Sim.run
      ~strategy:(Sim.Sampled
                   { sample_insns = 100; sample_period = 1000; warmup_insns = 0 })
      ~engine:`Fast bspec prog
  in
  check
    Alcotest.(option string)
    "sampled max-cycles fallback" (Some "max-cycles")
    (provenance ~ctx:"sampled-budget" rs).Sim.prov_fallback;
  assert_identical ~ctx:"sampled-budget" (Sim.run ~engine:`Fast bspec prog) rs

(* ---- strategy string syntax ----------------------------------------- *)

let test_strategy_strings () =
  let roundtrip s =
    match Sim.strategy_of_string s with
    | Ok v -> check Alcotest.string s s (Sim.strategy_to_string v)
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  List.iter roundtrip [ "serial"; "parallel:5000:1000"; "sampled:100:1000:50" ];
  List.iter
    (fun s ->
      match Sim.strategy_of_string s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [ ""; "parallel"; "parallel:x:1"; "sampled:1:2"; "parallel:-1:0"; "turbo" ]

let kernels () = Workloads.Suite.names ()

let suite =
  let stitch engine tag =
    List.map
      (fun name ->
        Alcotest.test_case
          (Printf.sprintf "stitch %s %s" tag name)
          `Quick
          (test_stitch_identity engine name))
      (kernels ())
  in
  stitch `Fast "fast"
  @ stitch `Slow "slow"
  @ [ Alcotest.test_case "1-insn intervals (fast)" `Quick
        (test_one_insn_intervals `Fast);
      Alcotest.test_case "1-insn intervals (slow)" `Quick
        (test_one_insn_intervals `Slow);
      Alcotest.test_case "truncation mid-interval (fast)" `Quick
        (test_truncation `Fast);
      Alcotest.test_case "truncation mid-interval (slow)" `Quick
        (test_truncation `Slow);
      Alcotest.test_case "fork fan-out" `Quick
        (test_pool_fanout Fastsim_exec.Pool.Fork `Fast);
      Alcotest.test_case "domains fan-out" `Quick
        (test_pool_fanout Fastsim_exec.Pool.Domains `Fast);
      Alcotest.test_case "inline pool fan-out (slow)" `Quick
        (test_pool_fanout Fastsim_exec.Pool.Inline `Slow);
      Alcotest.test_case "crashed workers all repaired" `Quick
        test_all_workers_lost;
      Alcotest.test_case "capture/restore round-trip" `Quick
        test_capture_restore_roundtrip;
      Alcotest.test_case "pending-event hazard (regression)" `Quick
        test_pending_event_hazard;
      Alcotest.test_case "sampled: exact architectural results" `Quick
        test_sampled_exact_arch;
      Alcotest.test_case "sampled: deterministic" `Quick
        test_sampled_deterministic;
      Alcotest.test_case "sampled: steady kernels within 5%" `Quick
        test_sampled_accuracy;
      Alcotest.test_case "sampled: warmup monotonicity" `Quick
        test_warmup_monotonicity;
      Alcotest.test_case "fallbacks stay exact and audited" `Quick
        test_fallbacks;
      Alcotest.test_case "strategy string syntax" `Quick test_strategy_strings ]
