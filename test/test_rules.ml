(* The grammar-compressed chain store (docs/INTERNALS.md
   "Memoization 2.0"): compress/expand must be an exact inverse over
   arbitrarily nested loop structure, hash-consing must dedup shared
   suffixes (the cross-chain sharing the serve registry relies on), and
   refcounts must return every modeled byte when the last holder lets
   go. Replay equivalence over rule-backed strides is covered by the
   equivalence suite and the fuzz oracle. *)

module Store = Memo.Store
module Action = Memo.Action

let check = Alcotest.check

let seg_of_int i =
  { Action.pg_key = Printf.sprintf "key%06d" (i land 0xfff);
    pg_silent = i land 7;
    pg_retired = 1 + (i land 3);
    pg_classes = (if i land 1 = 0 then [||] else [| i land 15 |]);
    pg_ops = [| Action.I_load (1 + (i land 31)) |] }

let segs_of_ints l = Array.of_list (List.map seg_of_int l)

let segs_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Action.pseg_equal x y) a b

(* ---------------------------------------------------------------- *)
(* Generator: a loop-nest AST flattened to a segment run, so the
   interesting inputs — tandem repeats, nested repeats, repeats of
   mixed bodies — are produced by construction rather than by luck. *)

type shape = Leaf of int | Seq of shape list | Loop of shape * int

let rec flatten = function
  | Leaf i -> [ i ]
  | Seq l -> List.concat_map flatten l
  | Loop (s, k) ->
    let body = flatten s in
    List.concat (List.init k (fun _ -> body))

let rec shape_to_string = function
  | Leaf i -> string_of_int i
  | Seq l -> "[" ^ String.concat ";" (List.map shape_to_string l) ^ "]"
  | Loop (s, k) -> Printf.sprintf "(%s)*%d" (shape_to_string s) k

let gen_shape =
  QCheck.Gen.(
    sized_size (int_bound 4) @@ fix (fun self n ->
        if n = 0 then map (fun i -> Leaf i) (int_bound 40)
        else
          frequency
            [ (2, map (fun i -> Leaf i) (int_bound 40));
              ( 3,
                map
                  (fun l -> Seq l)
                  (list_size (int_range 1 5) (self (n - 1))) );
              ( 3,
                map2
                  (fun s k -> Loop (s, k))
                  (self (n - 1))
                  (int_range 2 6) ) ]))

let arb_shape = QCheck.make ~print:shape_to_string gen_shape

let roundtrip_prop =
  QCheck.Test.make ~name:"intern/expand is the identity on nested loops"
    ~count:300 arb_shape (fun shape ->
      let segs = segs_of_ints (flatten shape) in
      let st = Store.create () in
      let r = Store.intern_segs st segs in
      let back = Store.expand r in
      let ok = segs_equal segs back in
      (* interning the same run again is answered by hash-consing:
         physically the same root, still exactly one copy *)
      let r2 = Store.intern_segs st segs in
      let consed = r == r2 in
      Store.release st r;
      Store.release st r2;
      let clean = Store.live_rules st = 0 && Store.bytes st = 0 in
      ok && consed && clean)

let depth_cap_prop =
  QCheck.Test.make
    ~name:"rep depth 0 disables folding but preserves the inverse"
    ~count:150 arb_shape (fun shape ->
      let segs = segs_of_ints (flatten shape) in
      let st = Store.create ~max_rep_depth:0 () in
      let r = Store.intern_segs st segs in
      let ok =
        segs_equal segs (Store.expand r)
        && (Store.counters st).Store.live_rep_rules = 0
      in
      Store.release st r;
      ok && Store.live_rules st = 0)

let test_tandem_repeat_compresses () =
  (* [A B] * 10: the flat spine models 10 bytes/segment; the rep form
     is one 2-segment body plus a 16-byte R_rep node. *)
  let body = [ 2; 5 ] in
  let segs = segs_of_ints (List.concat (List.init 10 (fun _ -> body))) in
  let st = Store.create () in
  let r = Store.intern_segs st segs in
  check Alcotest.int "expands to 20 segments" 20 r.Action.ru_nsegs;
  check Alcotest.bool "rep rule created" true
    ((Store.counters st).Store.live_rep_rules >= 1);
  check Alcotest.bool "modeled bytes beat the flat spine" true
    (Store.bytes st < 100);
  check Alcotest.bool "exact inverse" true
    (segs_equal segs (Store.expand r));
  Store.release st r;
  check Alcotest.int "all rules freed" 0 (Store.live_rules st)

let test_mid_rule_divergence_shares_suffix () =
  (* Two chains identical except at one interior segment share every
     rule of the common suffix — the store answers the second intern's
     suffix nodes from the table instead of re-creating them. *)
  let st = Store.create () in
  let a = segs_of_ints [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  let b = segs_of_ints [ 1; 2; 3; 4; 105; 6; 7; 8; 9; 10 ] in
  let ra = Store.intern_segs st a in
  let before = (Store.counters st).Store.dedup_hits in
  let rb = Store.intern_segs st b in
  let shared = (Store.counters st).Store.dedup_hits - before in
  check Alcotest.bool "divergent chain roots differ" true (ra != rb);
  check Alcotest.bool "suffix nodes answered by the table" true
    (shared >= 5);
  check Alcotest.bool "fewer rules than two private spines" true
    (Store.live_rules st < Array.length a + Array.length b);
  check Alcotest.bool "first chain intact" true
    (segs_equal a (Store.expand ra));
  check Alcotest.bool "second chain intact" true
    (segs_equal b (Store.expand rb));
  (* dropping one chain keeps the shared suffix alive for the other *)
  Store.release st ra;
  check Alcotest.bool "survivor still expands" true
    (segs_equal b (Store.expand rb));
  Store.release st rb;
  check Alcotest.int "empty after both release" 0 (Store.live_rules st)

let test_release_cascades_and_guards () =
  let st = Store.create () in
  let r = Store.intern_segs st (segs_of_ints [ 1; 2; 3 ]) in
  let released_before = (Store.counters st).Store.released_rules in
  Store.release st r;
  check Alcotest.int "cascade freed the spine" 3
    ((Store.counters st).Store.released_rules - released_before);
  check Alcotest.int "no bytes left" 0 (Store.bytes st);
  (match Store.release st r with
   | () -> Alcotest.fail "double release must raise"
   | exception Invalid_argument _ -> ());
  (* nil is pinned: releasing it is a no-op, never an error *)
  Store.release st (Store.nil st);
  check Alcotest.int "still empty" 0 (Store.live_rules st)

(* Same synthetic key layout as test_stride.ml, for driving a real
   p-action cache against a budgeted store. *)
let fake_key ?(entries = 4) ?(ind = 0) tag =
  let b = Bytes.make (11 + (4 * entries) + (4 * ind)) '\000' in
  Bytes.set b 5 (Char.chr entries);
  Bytes.set b 6 (Char.chr ind);
  Bytes.set b 7 (Char.chr (tag land 0xff));
  Bytes.set b 8 (Char.chr ((tag lsr 8) land 0xff));
  Bytes.unsafe_to_string b

let record_run pc ~first ~last =
  for i = first to last do
    let cfg = Memo.Pcache.intern pc (fake_key i) in
    let terminal =
      if i = last then Memo.Action.T_halt
      else Memo.Action.T_goto (Memo.Pcache.intern pc (fake_key (i + 1)))
    in
    ignore
      (Memo.Pcache.merge_group pc cfg ~classes:[| i |] ~silent:i ~retired:1
         ~items:[ Memo.Action.I_load (100 + i) ]
         ~terminal
        : Memo.Action.config option)
  done

let test_over_budget_store_refuses_compaction () =
  (* The budget is advisory: the first compaction goes through (the
     store is empty), pushes the store over its 1-byte budget, and
     every later compaction is refused — chains simply stay plain. *)
  let st = Store.create ~budget_bytes:1 () in
  let pc = Memo.Pcache.create ~store:st () in
  record_run pc ~first:1 ~last:4;
  record_run pc ~first:50 ~last:53;
  let head1 = Memo.Pcache.intern pc (fake_key 1) in
  let head2 = Memo.Pcache.intern pc (fake_key 50) in
  check Alcotest.bool "first compaction admitted" true
    (Memo.Pcache.compact pc head1);
  check Alcotest.bool "store over budget" true (Store.over_budget st);
  check Alcotest.bool "second compaction refused" false
    (Memo.Pcache.compact pc head2);
  check Alcotest.int "exactly one stride"
    1
    (Memo.Pcache.counters pc).stride_compactions;
  (* the refused chain is still a perfectly good plain chain *)
  check Alcotest.bool "refused head keeps its group" true
    ((Memo.Pcache.intern pc (fake_key 50)).Memo.Action.cfg_group <> None);
  Memo.Pcache.release_rules pc;
  check Alcotest.int "rules returned on release" 0 (Store.live_rules st)

let test_shared_store_across_caches () =
  (* Two caches over the same store: identical runs compact into the
     same rules (one copy), and each cache's release only drops its own
     references. *)
  let st = Store.create () in
  let pc1 = Memo.Pcache.create ~store:st () in
  let pc2 = Memo.Pcache.create ~store:st () in
  check Alcotest.int "both caches registered" 2 (Store.holders st);
  record_run pc1 ~first:1 ~last:6;
  record_run pc2 ~first:1 ~last:6;
  let h1 = Memo.Pcache.intern pc1 (fake_key 1) in
  let h2 = Memo.Pcache.intern pc2 (fake_key 1) in
  check Alcotest.bool "cache 1 compacts" true (Memo.Pcache.compact pc1 h1);
  let rules_after_one = Store.live_rules st in
  check Alcotest.bool "cache 2 compacts" true (Memo.Pcache.compact pc2 h2);
  check Alcotest.int "second cache added no rules" rules_after_one
    (Store.live_rules st);
  Memo.Pcache.release_rules pc1;
  check Alcotest.int "shared rules survive first release" rules_after_one
    (Store.live_rules st);
  Memo.Pcache.release_rules pc2;
  check Alcotest.int "empty after last release" 0 (Store.live_rules st);
  check Alcotest.int "holders unwound" 0 (Store.holders st)

let suite =
  [ QCheck_alcotest.to_alcotest roundtrip_prop;
    QCheck_alcotest.to_alcotest depth_cap_prop;
    Alcotest.test_case "tandem repeat compresses" `Quick
      test_tandem_repeat_compresses;
    Alcotest.test_case "mid-rule divergence shares suffix" `Quick
      test_mid_rule_divergence_shares_suffix;
    Alcotest.test_case "release cascades and guards" `Quick
      test_release_cascades_and_guards;
    Alcotest.test_case "over-budget store refuses compaction" `Quick
      test_over_budget_store_refuses_compaction;
    Alcotest.test_case "shared store across caches" `Quick
      test_shared_store_across_caches ]
