(* The benchmark suite: every kernel terminates, scales, and exercises the
   behaviours its description claims. *)

let check = Alcotest.check

let test_all_terminate () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let prog = w.build w.test_scale in
      let _, _, n = Fastsim.Sim.functional ~max_insts:20_000_000 prog in
      check Alcotest.bool (w.name ^ " does real work") true (n > 500);
      check Alcotest.bool (w.name ^ " bounded") true (n < 20_000_000))
    Workloads.Suite.all

let test_scaling () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let _, _, n1 = Fastsim.Sim.functional (w.build w.test_scale) in
      let _, _, n2 = Fastsim.Sim.functional (w.build (2 * w.test_scale)) in
      check Alcotest.bool (w.name ^ " scales with the parameter") true
        (n2 > n1 + ((n1 - 2000) / 2)))
    Workloads.Suite.all

let test_suite_composition () =
  check Alcotest.int "18 workloads" 18 (List.length Workloads.Suite.all);
  check Alcotest.int "8 integer" 8 (List.length Workloads.Suite.integer);
  check Alcotest.int "10 floating" 10 (List.length Workloads.Suite.floating);
  let w = Workloads.Suite.find "099.go" in
  let w' = Workloads.Suite.find "go" in
  check Alcotest.string "find by either name" w.Workloads.Workload.name
    w'.Workloads.Workload.name;
  (match Workloads.Suite.find "nonesuch" with
   | _ -> Alcotest.fail "expected Not_found"
   | exception Not_found -> ());
  check Alcotest.int "names" 18 (List.length (Workloads.Suite.names ()))

let dynamic_mix prog =
  let emu = Emu.Emulator.create ~read_ahead:false prog in
  let counts = Hashtbl.create 8 in
  let bump k =
    Hashtbl.replace counts k
      (1 + try Hashtbl.find counts k with Not_found -> 0)
  in
  let rec go n =
    if n > 10_000_000 then Alcotest.fail "trace too long"
    else begin
      let before = Emu.Emulator.outstanding emu in
      let s = Emu.Emulator.step_one emu in
      match s.Emu.Emulator.s_event with
      | Some (Emu.Emulator.Halted _) -> ()
      | _ ->
        (match Isa.Program.fetch prog s.Emu.Emulator.s_addr with
         | insn -> bump (Isa.Instr.fu_class insn)
         | exception Isa.Program.Fault _ -> ());
        if Emu.Emulator.outstanding emu > before then
          ignore
            (Emu.Emulator.rollback_to emu
               ~index:(Emu.Emulator.outstanding emu - 1)
              : int);
        go (n + 1)
    end
  in
  go 0;
  fun k -> try Hashtbl.find counts k with Not_found -> 0

let test_categories_match_mix () =
  (* FP kernels execute FP ops; integer kernels essentially none *)
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let mix = dynamic_mix (w.build w.test_scale) in
      let fp =
        mix Isa.Instr.Fu_fp_add + mix Isa.Instr.Fu_fp_mul
        + mix Isa.Instr.Fu_fp_div + mix Isa.Instr.Fu_fp_sqrt
      in
      let mem = mix Isa.Instr.Fu_mem in
      check Alcotest.bool (w.name ^ " touches memory") true (mem > 0);
      match w.category with
      | Workloads.Workload.Floating ->
        check Alcotest.bool (w.name ^ " runs FP") true (fp > 100)
      | Workloads.Workload.Integer ->
        check Alcotest.bool (w.name ^ " is integer") true (fp = 0))
    Workloads.Suite.all

let test_claimed_behaviours () =
  (* spot-check distinctive characteristics *)
  let mix name = dynamic_mix ((Workloads.Suite.find name).build 2) in
  let m = mix "ijpeg" in
  check Alcotest.bool "ijpeg multiplies" true (m Isa.Instr.Fu_int_mul > 100);
  check Alcotest.bool "ijpeg divides" true (m Isa.Instr.Fu_int_div > 50);
  let m = mix "hydro2d" in
  check Alcotest.bool "hydro2d divides" true (m Isa.Instr.Fu_fp_div > 100);
  let m = mix "fpppp" in
  check Alcotest.bool "fpppp sqrt" true (m Isa.Instr.Fu_fp_sqrt > 10);
  (* fpppp is nearly branch-free: branches well under 10% *)
  check Alcotest.bool "fpppp long blocks" true
    (10 * m Isa.Instr.Fu_branch < m Isa.Instr.Fu_fp_add + m Isa.Instr.Fu_fp_mul)

let test_indirect_jump_kernels () =
  (* the interpreter kernels really do execute indirect jumps *)
  List.iter
    (fun name ->
      let w = Workloads.Suite.find name in
      let prog = w.Workloads.Workload.build w.Workloads.Workload.test_scale in
      let emu = Emu.Emulator.create ~predictor:(Bpred.standard ~prog ()) prog in
      let ind = ref 0 and guard = ref 0 in
      while (not (Emu.Emulator.halted emu)) && !guard < 1_000_000 do
        incr guard;
        (match Emu.Emulator.next_event emu with
         | Emu.Emulator.Indirect _ -> incr ind
         | Emu.Emulator.Cond _ -> ()
         | Emu.Emulator.Wedged _ | Emu.Emulator.Halted _ ->
           if Emu.Emulator.outstanding emu > 0 then
             ignore (Emu.Emulator.rollback_to emu ~index:0 : int))
      done;
      check Alcotest.bool (name ^ " uses indirect jumps") true (!ind > 50))
    [ "m88ksim"; "perl" ]

let suite =
  [ Alcotest.test_case "all terminate" `Slow test_all_terminate;
    Alcotest.test_case "scaling" `Slow test_scaling;
    Alcotest.test_case "suite composition" `Quick test_suite_composition;
    Alcotest.test_case "categories match dynamic mix" `Slow
      test_categories_match_mix;
    Alcotest.test_case "claimed behaviours" `Slow test_claimed_behaviours;
    Alcotest.test_case "indirect-jump kernels" `Quick
      test_indirect_jump_kernels ]
