(* Sequence-addressed queues: FIFO order, truncation, growth. *)

let check = Alcotest.check

let test_fifo () =
  let q = Emu.Seq_queue.create () in
  for i = 0 to 99 do
    Emu.Seq_queue.push q i
  done;
  check Alcotest.int "length" 100 (Emu.Seq_queue.length q);
  for i = 0 to 99 do
    check Alcotest.int "pop order" i (Emu.Seq_queue.pop q)
  done;
  check Alcotest.int "empty" 0 (Emu.Seq_queue.length q);
  (match Emu.Seq_queue.pop q with
   | _ -> Alcotest.fail "expected Invalid_argument"
   | exception Invalid_argument _ -> ())

let test_growth () =
  let q = Emu.Seq_queue.create () in
  for i = 0 to 9999 do
    Emu.Seq_queue.push q i
  done;
  for i = 0 to 9999 do
    check Alcotest.int "grown pop" i (Emu.Seq_queue.pop q)
  done

let test_truncate () =
  let q = Emu.Seq_queue.create () in
  for i = 0 to 9 do
    Emu.Seq_queue.push q i
  done;
  Emu.Seq_queue.truncate_to q 6;
  check Alcotest.int "len after truncate" 6 (Emu.Seq_queue.length q);
  check Alcotest.int "tail seq" 6 (Emu.Seq_queue.tail_seq q);
  Emu.Seq_queue.push q 100;
  for _ = 0 to 5 do
    ignore (Emu.Seq_queue.pop q : int)
  done;
  check Alcotest.int "new entry after truncate" 100 (Emu.Seq_queue.pop q)

let test_truncate_past_consumed () =
  let q = Emu.Seq_queue.create () in
  for i = 0 to 9 do
    Emu.Seq_queue.push q i
  done;
  for _ = 0 to 7 do
    ignore (Emu.Seq_queue.pop q : int)
  done;
  (* consumption has passed seq 5; truncate must simply empty the queue *)
  Emu.Seq_queue.truncate_to q 5;
  check Alcotest.int "emptied" 0 (Emu.Seq_queue.length q);
  check Alcotest.int "head=tail" (Emu.Seq_queue.head_seq q)
    (Emu.Seq_queue.tail_seq q)

let test_interleaved () =
  let q = Emu.Seq_queue.create () in
  Emu.Seq_queue.push q 1;
  Emu.Seq_queue.push q 2;
  check Alcotest.int "pop 1" 1 (Emu.Seq_queue.pop q);
  Emu.Seq_queue.push q 3;
  check (Alcotest.option Alcotest.int) "peek" (Some 2) (Emu.Seq_queue.peek q);
  check Alcotest.int "last" 3 (Emu.Seq_queue.last q);
  check Alcotest.int "pop 2" 2 (Emu.Seq_queue.pop q);
  check Alcotest.int "pop 3" 3 (Emu.Seq_queue.pop q)

let model_prop =
  (* random interleaving of push/pop/truncate against a list model *)
  QCheck.Test.make ~name:"queue matches list model" ~count:300
    QCheck.(list (int_bound 10))
    (fun ops ->
      let q = Emu.Seq_queue.create () in
      let model = ref [] in (* youngest first *)
      let consumed = ref 0 in
      List.iter
        (fun op ->
          if op <= 6 then begin
            Emu.Seq_queue.push q op;
            model := op :: !model
          end
          else if op <= 8 then begin
            match List.rev !model with
            | [] -> ()
            | oldest :: rest ->
              incr consumed;
              assert (Emu.Seq_queue.pop q = oldest);
              model := List.rev rest
          end
          else begin
            (* drop the youngest entry if any *)
            let tail = Emu.Seq_queue.tail_seq q in
            Emu.Seq_queue.truncate_to q (max (tail - 1) (Emu.Seq_queue.head_seq q));
            match !model with [] -> () | _ :: rest -> model := rest
          end)
        ops;
      Emu.Seq_queue.length q = List.length !model)

let suite =
  [ Alcotest.test_case "fifo order" `Quick test_fifo;
    Alcotest.test_case "growth" `Quick test_growth;
    Alcotest.test_case "truncate" `Quick test_truncate;
    Alcotest.test_case "truncate past consumed" `Quick
      test_truncate_past_consumed;
    Alcotest.test_case "interleaved" `Quick test_interleaved;
    QCheck_alcotest.to_alcotest model_prop ]
