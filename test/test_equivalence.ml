(* THE paper's central claim: FastSim (memoized) produces exactly the same
   cycle counts and statistics as SlowSim (detailed-only), on every
   program, under every replacement policy. "Fast-forwarding ... produces
   exactly the same, cycle-accurate result as conventional simulation." *)

let check = Alcotest.check

module Spec = Fastsim.Sim.Spec

let run_slow ?(spec = Spec.default) prog =
  Fastsim.Sim.run ~engine:`Slow spec prog

let run_fast ?(spec = Spec.default) prog =
  Fastsim.Sim.run ~engine:`Fast spec prog

let assert_equivalent ?policy prog =
  let spec = Spec.with_max_cycles 20_000_000 Spec.default in
  let fast_spec =
    match policy with None -> spec | Some p -> Spec.with_policy p spec
  in
  let slow = run_slow ~spec prog in
  let fast = run_fast ~spec:fast_spec prog in
  check Alcotest.int "cycles" slow.Fastsim.Sim.cycles fast.Fastsim.Sim.cycles;
  check Alcotest.int "retired" slow.Fastsim.Sim.retired
    fast.Fastsim.Sim.retired;
  check Alcotest.int "emulated" slow.Fastsim.Sim.emulated_insts
    fast.Fastsim.Sim.emulated_insts;
  check Alcotest.int "wrong path" slow.Fastsim.Sim.wrong_path_insts
    fast.Fastsim.Sim.wrong_path_insts;
  check Alcotest.bool "final state" true
    (Emu.Arch_state.equal slow.Fastsim.Sim.final_state
       fast.Fastsim.Sim.final_state);
  (* identical cache behaviour, interaction for interaction *)
  check Alcotest.int "cache loads" slow.Fastsim.Sim.cache.loads
    fast.Fastsim.Sim.cache.loads;
  check Alcotest.int "l1 misses" slow.Fastsim.Sim.cache.l1_misses
    fast.Fastsim.Sim.cache.l1_misses;
  check Alcotest.int "l2 misses" slow.Fastsim.Sim.cache.l2_misses
    fast.Fastsim.Sim.cache.l2_misses;
  check Alcotest.int "conditional branches"
    slow.Fastsim.Sim.branches.conditionals
    fast.Fastsim.Sim.branches.conditionals;
  check Alcotest.int "mispredictions" slow.Fastsim.Sim.branches.mispredicted
    fast.Fastsim.Sim.branches.mispredicted;
  check Alcotest.int "indirects" slow.Fastsim.Sim.branches.indirects
    fast.Fastsim.Sim.branches.indirects;
  (slow, fast)

let test_workload name () =
  let w = Workloads.Suite.find name in
  ignore (assert_equivalent (w.Workloads.Workload.build w.test_scale))

let test_retired_matches_functional () =
  let w = Workloads.Suite.find "gcc" in
  let prog = w.Workloads.Workload.build w.test_scale in
  let _, _, n = Fastsim.Sim.functional prog in
  let slow, _ = assert_equivalent prog in
  (* retired counts the Halt as well *)
  check Alcotest.int "retired = insts + 1" (n + 1) slow.Fastsim.Sim.retired

let test_fast_actually_replays () =
  let w = Workloads.Suite.find "perl" in
  let prog = w.Workloads.Workload.build 50 in
  let fast = run_fast prog in
  match fast.Fastsim.Sim.memo with
  | None -> Alcotest.fail "memo stats expected"
  | Some m ->
    check Alcotest.bool "replay dominates" true
      (Memo.Stats.detailed_fraction m < 0.2);
    check Alcotest.bool "chains formed" true (m.actions_replayed > 100)

let policies =
  [ ("unbounded", Memo.Pcache.Unbounded);
    ("flush-16k", Memo.Pcache.Flush_on_full 16_384);
    ("flush-2k", Memo.Pcache.Flush_on_full 2_048);
    ("copying-16k", Memo.Pcache.Copying_gc 16_384);
    ("generational", Memo.Pcache.Generational_gc { nursery = 4096; total = 16_384 }) ]

let test_policy_equivalence (pname, policy) () =
  (* run two representative kernels under a tight budget *)
  List.iter
    (fun wname ->
      let w = Workloads.Suite.find wname in
      ignore (assert_equivalent ~policy (w.Workloads.Workload.build w.test_scale)))
    [ "go"; "tomcatv" ];
  ignore pname

let random_equivalence_prop =
  QCheck.Test.make ~name:"slow == fast on random programs" ~count:25
    QCheck.(int_bound 100_000)
    (fun seed ->
      let prog =
        Gen.program_of_seed
          ~cfg:{ Gen.default_cfg with outer_iters = 3; inner_iters = 6 }
          seed
      in
      let slow = run_slow prog in
      let fast = run_fast prog in
      slow.Fastsim.Sim.cycles = fast.Fastsim.Sim.cycles
      && slow.Fastsim.Sim.retired = fast.Fastsim.Sim.retired
      && Emu.Arch_state.equal slow.Fastsim.Sim.final_state
           fast.Fastsim.Sim.final_state)

let random_policy_equivalence_prop =
  QCheck.Test.make ~name:"slow == fast under tiny flush budget (random)"
    ~count:10
    QCheck.(int_bound 100_000)
    (fun seed ->
      let prog =
        Gen.program_of_seed
          ~cfg:{ Gen.default_cfg with outer_iters = 3; inner_iters = 6 }
          seed
      in
      let slow = run_slow prog in
      let fast =
        run_fast
          ~spec:
            (Spec.with_policy (Memo.Pcache.Flush_on_full 1024) Spec.default)
          prog
      in
      slow.Fastsim.Sim.cycles = fast.Fastsim.Sim.cycles
      && slow.Fastsim.Sim.retired = fast.Fastsim.Sim.retired)

let test_predictor_variants () =
  List.iter
    (fun predictor ->
      let w = Workloads.Suite.find "compress" in
      let prog = w.Workloads.Workload.build 1 in
      let spec = Spec.with_predictor predictor Spec.default in
      let slow = run_slow ~spec prog in
      let fast = run_fast ~spec prog in
      check Alcotest.int "cycles" slow.Fastsim.Sim.cycles
        fast.Fastsim.Sim.cycles)
    [ Fastsim.Sim.Standard; Fastsim.Sim.Not_taken; Fastsim.Sim.Taken ]

let test_cache_config_variants () =
  let w = Workloads.Suite.find "vortex" in
  let prog = w.Workloads.Workload.build 1 in
  let spec = Spec.with_cache_config Cachesim.Config.tiny Spec.default in
  let slow = run_slow ~spec prog in
  let fast = run_fast ~spec prog in
  check Alcotest.int "cycles under tiny cache" slow.Fastsim.Sim.cycles
    fast.Fastsim.Sim.cycles

let test_class_histograms_equal () =
  List.iter
    (fun name ->
      let w = Workloads.Suite.find name in
      let prog = w.Workloads.Workload.build w.Workloads.Workload.test_scale in
      let slow = run_slow prog in
      let fast = run_fast prog in
      check
        Alcotest.(array int)
        (name ^ " per-class retirement")
        slow.Fastsim.Sim.retired_by_class fast.Fastsim.Sim.retired_by_class;
      check Alcotest.int
        (name ^ " histogram sums to retired")
        slow.Fastsim.Sim.retired
        (Array.fold_left ( + ) 0 slow.Fastsim.Sim.retired_by_class))
    [ "go"; "perl"; "tomcatv"; "wave5" ]

(* The observability layer must be strictly passive: attaching a full
   context (trace + metrics + profile) must leave EVERY field of the
   result bit-identical, for both engines. *)
let test_obs_determinism () =
  let assert_same_result name (a : Fastsim.Sim.result)
      (b : Fastsim.Sim.result) =
    check Alcotest.int (name ^ " cycles") a.cycles b.cycles;
    check Alcotest.int (name ^ " retired") a.retired b.retired;
    check
      Alcotest.(array int)
      (name ^ " retired_by_class")
      a.retired_by_class b.retired_by_class;
    check Alcotest.int (name ^ " emulated") a.emulated_insts b.emulated_insts;
    check Alcotest.int (name ^ " wrong path") a.wrong_path_insts
      b.wrong_path_insts;
    check Alcotest.bool (name ^ " branch stats") true
      (a.branches = b.branches);
    check Alcotest.bool (name ^ " cache stats") true (a.cache = b.cache);
    check Alcotest.bool (name ^ " memo stats") true (a.memo = b.memo);
    check Alcotest.bool (name ^ " pcache counters") true
      (a.pcache = b.pcache);
    check Alcotest.bool (name ^ " final state") true
      (Emu.Arch_state.equal a.final_state b.final_state)
  in
  List.iter
    (fun wname ->
      let w = Workloads.Suite.find wname in
      let prog = w.Workloads.Workload.build w.test_scale in
      let obs () = Fastsim_obs.Ctx.full () in
      assert_same_result (wname ^ " slow") (run_slow prog)
        (run_slow ~spec:(Spec.with_obs (obs ()) Spec.default) prog);
      assert_same_result (wname ^ " fast") (run_fast prog)
        (run_fast ~spec:(Spec.with_obs (obs ()) Spec.default) prog))
    [ "go"; "compress"; "tomcatv" ]

(* ... and with obs attached to BOTH engines, the cross-engine claim
   still holds on the entire suite. *)
let test_obs_equivalence_all_kernels () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let prog = w.build w.test_scale in
      let slow =
        run_slow ~spec:(Spec.with_obs (Fastsim_obs.Ctx.full ()) Spec.default)
          prog
      in
      let fast =
        run_fast ~spec:(Spec.with_obs (Fastsim_obs.Ctx.full ()) Spec.default)
          prog
      in
      check Alcotest.int (w.name ^ " cycles") slow.Fastsim.Sim.cycles
        fast.Fastsim.Sim.cycles;
      check Alcotest.int (w.name ^ " retired") slow.Fastsim.Sim.retired
        fast.Fastsim.Sim.retired;
      check Alcotest.bool (w.name ^ " final state") true
        (Emu.Arch_state.equal slow.Fastsim.Sim.final_state
           fast.Fastsim.Sim.final_state))
    Workloads.Suite.all

let suite =
  List.map
    (fun (w : Workloads.Workload.t) ->
      Alcotest.test_case ("equivalence " ^ w.name) `Quick
        (test_workload w.short))
    Workloads.Suite.all
  @ [ Alcotest.test_case "retired = functional + 1" `Quick
        test_retired_matches_functional;
      Alcotest.test_case "fast actually replays" `Quick
        test_fast_actually_replays ]
  @ List.map
      (fun p ->
        Alcotest.test_case
          ("policy equivalence: " ^ fst p)
          `Quick (test_policy_equivalence p))
      policies
  @ [ QCheck_alcotest.to_alcotest random_equivalence_prop;
      QCheck_alcotest.to_alcotest random_policy_equivalence_prop;
      Alcotest.test_case "predictor variants" `Quick test_predictor_variants;
      Alcotest.test_case "cache config variants" `Quick
        test_cache_config_variants;
      Alcotest.test_case "per-class histograms equal" `Quick
        test_class_histograms_equal;
      Alcotest.test_case "observability is passive" `Quick
        test_obs_determinism;
      Alcotest.test_case "slow == fast with obs, all kernels" `Quick
        test_obs_equivalence_all_kernels ]

