(* The textual assembler: syntax, pseudo-instructions, data directives,
   and a full parse -> assemble -> simulate round trip. *)

let check = Alcotest.check

let sum_source =
  {|
  ; sum an array of words
          .data table
          .words 1 2 3 4 5 6 7 8
          .data out
          .word 0
  start:  la   r1, table
          li   r2, 0
          li   r3, 8
  loop:   lw   r4, 0(r1)
          add  r2, r2, r4
          addi r1, r1, 4
          addi r3, r3, -1
          bgt  r3, r0, loop
          la   r5, out
          sw   r2, 0(r5)
          halt
|}

let test_roundtrip_execution () =
  let prog = Isa.Parse.program sum_source in
  let st, mem, _ = Emu.Emulator.run_functional prog in
  check Alcotest.int "sum" 36 (Emu.Arch_state.get_i st 2);
  check Alcotest.int "stored" 36
    (Emu.Memory.load32 mem (Isa.Program.symbol prog "out"))

let test_matches_dsl () =
  (* the textual form and the combinator form assemble identically *)
  let text =
    Isa.Parse.program
      {|
 l:    addi r1, r1, 5
       sub  r2, r1, r3
       bne  r2, r0, l
       halt
|}
  in
  let dsl =
    Isa.Asm.(
      assemble
        [ label "l";
          insn (Isa.Instr.Alui (Isa.Instr.Add, 1, 1, 5));
          insn (Isa.Instr.Alu (Isa.Instr.Sub, 2, 1, 3));
          bne 2 0 "l";
          halt ])
  in
  check Alcotest.int "same size" (Isa.Program.size dsl)
    (Isa.Program.size text);
  Array.iteri
    (fun i w ->
      check Alcotest.int32 (Printf.sprintf "word %d" i) w
        text.Isa.Program.words.(i))
    dsl.Isa.Program.words

let test_all_instruction_forms () =
  let prog =
    Isa.Parse.program
      {|
        .data d
        .doubles 1.5 -2.25
        .space 8
        .asciiz "hi\n"
        .data jt
        .addr a b
 a:     add   r1, r2, r3
        sltu  r4, r5, r6
        slli  r7, r8, 3
        ori   r9, r10, 0xff
        lui   r11, 0x1234
        mul   r12, r13, r14
        div   r15, r16, r17
        rem   r18, r19, r20
        lbu   r21, -4(r22)
        sh    r23, 6(r24)
        fld   f1, 0(r2)
        fsd   f2, 8(r2)
        fadd  f3, f4, f5
        fsqrt f6, f7
        feq   r25, f8, f9
        cvtif f10, r26
        cvtfi r27, f11
 b:     beq   r1, r2, a
        jal   r28, a
        jalr  r29, r1
        jr    r31
        ret
        nop
        halt
|}
  in
  check Alcotest.int "all forms assembled" 24 (Isa.Program.size prog);
  (* the jump table holds the two code addresses *)
  let mem = Emu.Memory.create () in
  Emu.Memory.load_program mem prog;
  let jt = Isa.Program.symbol prog "jt" in
  check Alcotest.int "jt[0]=a" (Isa.Program.symbol prog "a")
    (Emu.Memory.load32 mem jt);
  check Alcotest.int "jt[1]=b" (Isa.Program.symbol prog "b")
    (Emu.Memory.load32 mem (jt + 4))

let test_disasm_reparse () =
  (* disassembler output for simple ops parses back to the same encoding *)
  let w = Workloads.Suite.find "go" in
  let prog = w.Workloads.Workload.build 1 in
  let listing = Format.asprintf "%a" Isa.Program.pp_listing prog in
  (* strip the "0xADDR:" prefixes, keep only direct-jump-free lines (jump
     targets print as absolute hex, which the parser reads as labels) *)
  let lines = String.split_on_char '\n' listing in
  let reparsable =
    List.filter_map
      (fun line ->
        match String.index_opt line ':' with
        | Some i ->
          let body = String.sub line (i + 1) (String.length line - i - 1) in
          let body = String.trim body in
          if String.length body = 0 then None
          else if
            (* skip control flow whose operands are addresses, not labels *)
            List.exists
              (fun p ->
                String.length body >= String.length p
                && String.equal (String.sub body 0 (String.length p)) p)
              [ "j "; "jal "; "beq"; "bne"; "blt"; "bge"; "ble"; "bgt" ]
          then None
          else Some body
        | None -> None)
      lines
  in
  let source = String.concat "\n" (reparsable @ [ "halt" ]) in
  let reparsed = Isa.Parse.program source in
  check Alcotest.bool "reparsed most of the listing" true
    (Isa.Program.size reparsed > 25)

let test_errors () =
  let fails ?(expect_line = 0) src =
    match Isa.Parse.program src with
    | _ -> Alcotest.failf "expected parse error for %S" src
    | exception Isa.Parse.Error { line; _ } ->
      if expect_line > 0 then check Alcotest.int "line" expect_line line
  in
  fails ~expect_line:1 "bogus r1, r2";
  fails ~expect_line:2 "nop\nadd r1, r2";
  fails "lw r1, r2";
  fails ".words 1 2 3";
  fails {|.data d
.asciiz "unterminated|};
  (match Isa.Parse.program "j nowhere\nhalt" with
   | _ -> Alcotest.fail "expected Asm.Error"
   | exception Isa.Asm.Error _ -> ())

let test_comments_and_blank_lines () =
  let prog =
    Isa.Parse.program
      "\n  # a comment\n ; another\n\n nop ; trailing\n halt # end\n\n"
  in
  check Alcotest.int "two instructions" 2 (Isa.Program.size prog)

let test_parse_then_engines_agree () =
  let prog = Isa.Parse.program sum_source in
  let slow = Fastsim.Sim.run ~engine:`Slow Fastsim.Sim.Spec.default prog in
  let fast = Fastsim.Sim.run ~engine:`Fast Fastsim.Sim.Spec.default prog in
  check Alcotest.int "cycles" slow.Fastsim.Sim.cycles fast.Fastsim.Sim.cycles

let suite =
  [ Alcotest.test_case "round trip execution" `Quick
      test_roundtrip_execution;
    Alcotest.test_case "matches the DSL" `Quick test_matches_dsl;
    Alcotest.test_case "all instruction forms" `Quick
      test_all_instruction_forms;
    Alcotest.test_case "disassembly reparses" `Quick test_disasm_reparse;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "comments and blanks" `Quick
      test_comments_and_blank_lines;
    Alcotest.test_case "parsed programs simulate" `Quick
      test_parse_then_engines_agree ]
