(* Golden-stats regression suite: pins the complete statistics output of
   every engine on every kernel, so any change to simulated behaviour —
   however small — shows up as a reviewable per-field diff instead of a
   silent drift. The equivalence suite proves fast == slow; this suite
   proves today == yesterday.

   Each kernel has one JSON file under test/golden/ holding the stats of
   the slow engine, the baseline model, and the fast engine under all four
   replacement policies. A plain `dune runtest` compares; running with
   UPDATE_GOLDEN=1 rewrites the files in the source tree (found by walking
   up to .git from dune's sandbox cwd) and passes, so promotion is:

     UPDATE_GOLDEN=1 dune runtest   # then review the git diff *)

module J = Fastsim_obs.Json
module Sim = Fastsim.Sim

let check = Alcotest.check

let policies =
  [ ("unbounded", Memo.Pcache.Unbounded);
    ("flush16k", Memo.Pcache.Flush_on_full 16_384);
    ("copy16k", Memo.Pcache.Copying_gc 16_384);
    ( "gen4k16k",
      Memo.Pcache.Generational_gc { nursery = 4_096; total = 16_384 } ) ]

let result_json (r : Sim.result) =
  let base =
    [ ("cycles", J.Int r.Sim.cycles);
      ("retired", J.Int r.Sim.retired);
      ( "retired_by_class",
        J.List (Array.to_list (Array.map (fun n -> J.Int n)
                                 r.Sim.retired_by_class)) );
      ("emulated_insts", J.Int r.Sim.emulated_insts);
      ("wrong_path_insts", J.Int r.Sim.wrong_path_insts);
      ( "branches",
        J.Obj
          [ ("conditionals", J.Int r.Sim.branches.Sim.conditionals);
            ("mispredicted", J.Int r.Sim.branches.Sim.mispredicted);
            ("indirects", J.Int r.Sim.branches.Sim.indirects);
            ("misfetched", J.Int r.Sim.branches.Sim.misfetched) ] );
      ( "cache",
        let c = r.Sim.cache in
        J.Obj
          [ ("loads", J.Int c.Cachesim.Hierarchy.loads);
            ("stores", J.Int c.Cachesim.Hierarchy.stores);
            ("l1_hits", J.Int c.Cachesim.Hierarchy.l1_hits);
            ("l1_misses", J.Int c.Cachesim.Hierarchy.l1_misses);
            ("l2_hits", J.Int c.Cachesim.Hierarchy.l2_hits);
            ("l2_misses", J.Int c.Cachesim.Hierarchy.l2_misses);
            ("writebacks", J.Int c.Cachesim.Hierarchy.writebacks);
            ("merged_misses", J.Int c.Cachesim.Hierarchy.merged_misses) ] ) ]
  in
  let memo =
    match r.Sim.memo with
    | None -> []
    | Some m ->
      [ ( "memo",
          J.Obj
            [ ("detailed_retired", J.Int m.Memo.Stats.detailed_retired);
              ("replayed_retired", J.Int m.Memo.Stats.replayed_retired);
              ("detailed_cycles", J.Int m.Memo.Stats.detailed_cycles);
              ("replayed_cycles", J.Int m.Memo.Stats.replayed_cycles);
              ("actions_replayed", J.Int m.Memo.Stats.actions_replayed);
              ("groups_replayed", J.Int m.Memo.Stats.groups_replayed);
              ("chain_max", J.Int m.Memo.Stats.chain_max);
              ("episodes", J.Int m.Memo.Stats.episodes);
              ("detailed_entries", J.Int m.Memo.Stats.detailed_entries) ] ) ]
  in
  let pcache =
    match r.Sim.pcache with
    | None -> []
    | Some p ->
      [ ( "pcache",
          J.Obj
            [ ("static_configs", J.Int p.Memo.Pcache.static_configs);
              ("static_actions", J.Int p.Memo.Pcache.static_actions);
              ("live_configs", J.Int p.Memo.Pcache.live_configs);
              ("modeled_bytes", J.Int p.Memo.Pcache.modeled_bytes);
              ("peak_modeled_bytes", J.Int p.Memo.Pcache.peak_modeled_bytes);
              ("flushes", J.Int p.Memo.Pcache.flushes);
              ("minor_collections", J.Int p.Memo.Pcache.minor_collections);
              ("full_collections", J.Int p.Memo.Pcache.full_collections);
              ("stride_compactions", J.Int p.Memo.Pcache.stride_compactions);
              ("stride_expansions", J.Int p.Memo.Pcache.stride_expansions) ]
        ) ]
  in
  J.Obj (base @ memo @ pcache)

let collect (w : Workloads.Workload.t) =
  let prog = w.Workloads.Workload.build w.Workloads.Workload.test_scale in
  let run engine spec = Sim.run ~engine spec prog in
  J.Obj
    (("slow", result_json (run `Slow Sim.Spec.default))
     :: ("baseline", result_json (run `Baseline Sim.Spec.default))
     :: List.map
          (fun (pname, pol) ->
            ( "fast:" ^ pname,
              result_json (run `Fast (Sim.Spec.with_policy pol Sim.Spec.default))
            ))
          policies)

(* ---- comparison: flatten to dotted paths for per-field diffs ---- *)

let rec flatten prefix (j : J.t) acc =
  match j with
  | J.Obj kvs ->
    List.fold_left
      (fun acc (k, v) -> flatten (prefix ^ "." ^ k) v acc)
      acc kvs
  | J.List vs ->
    snd
      (List.fold_left
         (fun (i, acc) v ->
           (i + 1, flatten (Printf.sprintf "%s[%d]" prefix i) v acc))
         (0, acc) vs)
  | v -> (prefix, v) :: acc

let diff_fields golden got =
  let gold = flatten "" golden [] and cur = flatten "" got [] in
  let diffs = ref [] in
  List.iter
    (fun (path, v) ->
      match List.assoc_opt path gold with
      | None -> diffs := Printf.sprintf "%s: new field (%s)" path
                           (J.to_string v) :: !diffs
      | Some g when g <> v ->
        diffs :=
          Printf.sprintf "%s: golden=%s got=%s" path (J.to_string g)
            (J.to_string v)
          :: !diffs
      | Some _ -> ())
    cur;
  List.iter
    (fun (path, _) ->
      if not (List.mem_assoc path cur) then
        diffs := Printf.sprintf "%s: missing from run" path :: !diffs)
    gold;
  List.rev !diffs

(* ---- file plumbing ---- *)

let update_requested () =
  match Sys.getenv_opt "UPDATE_GOLDEN" with
  | Some "" | None -> false
  | Some _ -> true

(* dune runs tests from the build sandbox; promotion must land in the
   source tree, found by walking up to the repository root. *)
let source_golden_dir () =
  let rec up d =
    if Sys.file_exists (Filename.concat d ".git") then
      Some (Filename.concat (Filename.concat d "test") "golden")
    else
      let parent = Filename.dirname d in
      if String.equal parent d then None else up parent
  in
  up (Sys.getcwd ())

let golden_file name = Filename.concat "golden" (name ^ ".json")

let promote name json =
  match source_golden_dir () with
  | None -> Alcotest.fail "UPDATE_GOLDEN: repository root not found"
  | Some dir ->
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let path = Filename.concat dir (name ^ ".json") in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        J.to_channel oc json;
        output_char oc '\n')

let test_kernel (w : Workloads.Workload.t) () =
  let name = w.Workloads.Workload.name in
  let got = collect w in
  if update_requested () then promote name got
  else begin
    let path = golden_file name in
    if not (Sys.file_exists path) then
      Alcotest.fail
        (Printf.sprintf
           "no golden stats for %s — generate with UPDATE_GOLDEN=1 dune \
            runtest, then review the diff"
           name);
    let golden = J.of_file path in
    match diff_fields golden got with
    | [] -> ()
    | diffs ->
      Alcotest.fail
        (Printf.sprintf "%d field(s) drifted from golden stats:\n  %s"
           (List.length diffs)
           (String.concat "\n  " diffs))
  end;
  check Alcotest.bool "done" true true

(* ---- strategy coverage (docs/STRATEGY.md) ---- *)

(* The interval-parallel engine promises bit-identity with the serial
   run, so its statistics must be byte-identical to the pinned serial
   golden — not merely to a fresh serial run. [result_json] never
   serialises provenance (and parallel runs report no memo/pcache
   introspection), so the comparison is exact on the shared shape. *)
let member k = function
  | J.Obj kvs -> (
    match List.assoc_opt k kvs with
    | Some v -> v
    | None -> Alcotest.failf "golden file lacks %S member" k)
  | _ -> Alcotest.failf "golden file is not an object"

let test_parallel_golden (w : Workloads.Workload.t) () =
  if not (update_requested ()) then begin
    let name = w.Workloads.Workload.name in
    let path = golden_file name in
    if not (Sys.file_exists path) then
      Alcotest.failf "no golden stats for %s" name;
    let golden_slow = member "slow" (J.of_file path) in
    let retired =
      match member "retired" golden_slow with
      | J.Int n -> n
      | _ -> Alcotest.fail "golden retired is not an int"
    in
    let strategy =
      Sim.Parallel
        { interval_insns = max 1 (retired / 3);
          warmup_insns = max 1 (retired / 24);
          fanout = None }
    in
    let prog = w.Workloads.Workload.build w.Workloads.Workload.test_scale in
    let r = Sim.run ~strategy ~engine:`Fast Sim.Spec.default prog in
    check Alcotest.string "parallel == pinned serial golden"
      (J.to_string golden_slow)
      (J.to_string (result_json r))
  end;
  check Alcotest.bool "done" true true

(* The sampled engine is an estimator, so its output cannot be compared
   to the serial golden — instead the estimates themselves (including the
   per-statistic error bars) are pinned as their own fixture: sampling is
   deterministic, so any drift in window placement, functional warming or
   the error computation shows up as a field diff here. *)
let sampled_kernels = [ "099.go"; "102.swim"; "129.compress" ]

let sampled_fixture () =
  J.Obj
    (List.map
       (fun name ->
         let w = Workloads.Suite.find name in
         let prog =
           w.Workloads.Workload.build w.Workloads.Workload.test_scale
         in
         let serial = Sim.run ~engine:`Fast Sim.Spec.default prog in
         let t = serial.Sim.retired in
         let strategy =
           Sim.Sampled
             { sample_insns = max 1 (t / 40);
               sample_period = max 1 (t / 20);
               warmup_insns = max 1 (t / 80) }
         in
         let r = Sim.run ~strategy ~engine:`Fast Sim.Spec.default prog in
         let p =
           match r.Sim.provenance with
           | Some p -> p
           | None -> Alcotest.fail "sampled run without provenance"
         in
         ( name,
           J.Obj
             [ ("windows", J.Int p.Sim.prov_intervals);
               ("estimates", result_json r);
               ( "rel_errors",
                 J.Obj
                   (List.map
                      (fun (k, e) -> (k, J.Float e))
                      p.Sim.prov_errors) ) ] ))
       sampled_kernels)

let test_sampled_fixture () =
  let got = sampled_fixture () in
  if update_requested () then promote "sampled_estimates" got
  else begin
    let path = golden_file "sampled_estimates" in
    if not (Sys.file_exists path) then
      Alcotest.fail
        "no sampled-estimate fixture — generate with UPDATE_GOLDEN=1 dune \
         runtest, then review the diff";
    match diff_fields (J.of_file path) got with
    | [] -> ()
    | diffs ->
      Alcotest.fail
        (Printf.sprintf "%d field(s) drifted from the sampled fixture:\n  %s"
           (List.length diffs)
           (String.concat "\n  " diffs))
  end;
  check Alcotest.bool "done" true true

let suite =
  List.map
    (fun (w : Workloads.Workload.t) ->
      Alcotest.test_case w.Workloads.Workload.name `Quick (test_kernel w))
    Workloads.Suite.all
  @ List.map
      (fun (w : Workloads.Workload.t) ->
        Alcotest.test_case
          ("parallel:" ^ w.Workloads.Workload.name)
          `Quick (test_parallel_golden w))
      Workloads.Suite.all
  @ [ Alcotest.test_case "sampled estimate fixture" `Quick
        test_sampled_fixture ]
