(* Stride compaction: linear runs of single-outcome groups collapse into
   one N_stride node, expand back exactly on demand, and round-trip
   through persistence. Replay equivalence over strides is covered by the
   equivalence suite and the fuzz oracle; these tests pin the structural
   mechanics. *)

let check = Alcotest.check

(* Same synthetic key layout as test_memo.ml. *)
let fake_key ?(entries = 4) ?(ind = 0) tag =
  let b = Bytes.make (11 + (4 * entries) + (4 * ind)) '\000' in
  Bytes.set b 5 (Char.chr entries);
  Bytes.set b 6 (Char.chr ind);
  Bytes.set b 7 (Char.chr (tag land 0xff));
  Bytes.set b 8 (Char.chr ((tag lsr 8) land 0xff));
  Bytes.unsafe_to_string b

(* Records a linear run: groups [first..last], each [I_load (100 + i)],
   group i linking to i+1, the last halting. Built in order, so no merge
   ever sees a successor that already has a group — nothing compacts. *)
let record_run pc ~first ~last =
  for i = first to last do
    let cfg = Memo.Pcache.intern pc (fake_key i) in
    let terminal =
      if i = last then Memo.Action.T_halt
      else Memo.Action.T_goto (Memo.Pcache.intern pc (fake_key (i + 1)))
    in
    ignore
      (Memo.Pcache.merge_group pc cfg ~classes:[| i |] ~silent:i ~retired:1
         ~items:[ Memo.Action.I_load (100 + i) ]
         ~terminal
        : Memo.Action.config option)
  done

let stride_of cfg =
  match cfg.Memo.Action.cfg_group with
  | Some { Memo.Action.g_first = Memo.Action.N_stride s; _ } -> Some s
  | _ -> None

let test_compact_collapses_linear_run () =
  let pc = Memo.Pcache.create () in
  record_run pc ~first:1 ~last:4;
  let cfg1 = Memo.Pcache.intern pc (fake_key 1) in
  let bytes_before = (Memo.Pcache.counters pc).modeled_bytes in
  check Alcotest.bool "compacts" true (Memo.Pcache.compact pc cfg1);
  let c = Memo.Pcache.counters pc in
  check Alcotest.int "one compaction" 1 c.stride_compactions;
  check Alcotest.bool "modeled bytes shrink" true
    (c.modeled_bytes < bytes_before);
  (match stride_of cfg1 with
   | Some s ->
     check Alcotest.int "absorbs the three successors" 3
       (Array.length s.Memo.Action.s_segs);
     check Alcotest.int "owner ops kept" 1
       (Array.length s.Memo.Action.s_ops);
     (match s.Memo.Action.s_term with
      | Memo.Action.N_halt -> ()
      | _ -> Alcotest.fail "run ended in halt; stride terminal must too");
     Array.iteri
       (fun i (seg : Memo.Action.stride_seg) ->
         check Alcotest.int
           (Printf.sprintf "seg %d silent" i)
           (i + 2) seg.Memo.Action.sg_silent;
         check Alcotest.int
           (Printf.sprintf "seg %d ops" i)
           1
           (Array.length seg.Memo.Action.sg_ops))
       s.Memo.Action.s_segs
   | None -> Alcotest.fail "expected stride at group head");
  (* absorbed configurations stay interned, but lose their groups *)
  for i = 2 to 4 do
    let c = Memo.Pcache.intern pc (fake_key i) in
    check Alcotest.bool
      (Printf.sprintf "config %d group cleared" i)
      true
      (c.Memo.Action.cfg_group = None)
  done;
  (* a second compact is a no-op: the head is already a stride *)
  check Alcotest.bool "idempotent" false (Memo.Pcache.compact pc cfg1)

let test_compact_refuses_branchy_chain () =
  let pc = Memo.Pcache.create () in
  let cfg = Memo.Pcache.intern pc (fake_key 1) in
  let next = Memo.Pcache.intern pc (fake_key 2) in
  (* two recorded latencies on the same action: not a linear run *)
  ignore
    (Memo.Pcache.merge_group pc cfg ~classes:[||] ~silent:0 ~retired:1
       ~items:[ Memo.Action.I_load 3 ]
       ~terminal:(Memo.Action.T_goto next)
      : Memo.Action.config option);
  ignore
    (Memo.Pcache.merge_group pc cfg ~classes:[||] ~silent:0 ~retired:1
       ~items:[ Memo.Action.I_load 9 ]
       ~terminal:(Memo.Action.T_goto next)
      : Memo.Action.config option);
  ignore
    (Memo.Pcache.merge_group pc next ~classes:[||] ~silent:1 ~retired:1
       ~items:[] ~terminal:Memo.Action.T_halt
      : Memo.Action.config option);
  check Alcotest.bool "branchy owner refuses" false
    (Memo.Pcache.compact pc cfg);
  check Alcotest.int "nothing counted" 0
    (Memo.Pcache.counters pc).stride_compactions

let test_expand_is_exact_inverse () =
  let pc = Memo.Pcache.create () in
  record_run pc ~first:1 ~last:6;
  let cfg1 = Memo.Pcache.intern pc (fake_key 1) in
  let bytes_before = (Memo.Pcache.counters pc).modeled_bytes in
  check Alcotest.bool "compacts" true (Memo.Pcache.compact pc cfg1);
  let resolved = Memo.Pcache.expand_stride pc cfg1 in
  check Alcotest.int "returns absorbed configs" 5 (Array.length resolved);
  let c = Memo.Pcache.counters pc in
  check Alcotest.int "one expansion" 1 c.stride_expansions;
  check Alcotest.int "modeled bytes restored exactly" bytes_before
    c.modeled_bytes;
  (* every group is plain again, with its original shape *)
  for i = 1 to 6 do
    let cfg = Memo.Pcache.intern pc (fake_key i) in
    match cfg.Memo.Action.cfg_group with
    | Some g ->
      check Alcotest.int (Printf.sprintf "group %d silent" i) i
        g.Memo.Action.g_silent;
      check Alcotest.int (Printf.sprintf "group %d retired" i) 1
        g.Memo.Action.g_retired;
      (match g.Memo.Action.g_first with
       | Memo.Action.N_load { Memo.Action.l_edges = [ (lat, _) ] } ->
         check Alcotest.int (Printf.sprintf "group %d latency" i) (100 + i)
           lat
       | _ -> Alcotest.fail "expected single-edge load at head")
    | None -> Alcotest.fail (Printf.sprintf "group %d missing" i)
  done;
  (* expanding a plain group is a no-op *)
  check Alcotest.int "no-op expand" 0
    (Array.length (Memo.Pcache.expand_stride pc cfg1))

let test_merge_triggers_compaction () =
  let pc = Memo.Pcache.create () in
  record_run pc ~first:1 ~last:4;
  check Alcotest.int "nothing compacted while recording" 0
    (Memo.Pcache.counters pc).stride_compactions;
  (* a merge whose successor already owns a group (the loop-closure shape)
     offers that successor to the compactor *)
  let cfg0 = Memo.Pcache.intern pc (fake_key 99) in
  ignore
    (Memo.Pcache.merge_group pc cfg0 ~classes:[||] ~silent:0 ~retired:1
       ~items:[]
       ~terminal:(Memo.Action.T_goto (Memo.Pcache.intern pc (fake_key 1)))
      : Memo.Action.config option);
  check Alcotest.int "compaction fired at merge" 1
    (Memo.Pcache.counters pc).stride_compactions;
  check Alcotest.bool "successor got the stride" true
    (stride_of (Memo.Pcache.intern pc (fake_key 1)) <> None)

let test_stride_length_bounded () =
  let pc = Memo.Pcache.create () in
  record_run pc ~first:1 ~last:100;
  let cfg1 = Memo.Pcache.intern pc (fake_key 1) in
  check Alcotest.bool "compacts" true (Memo.Pcache.compact pc cfg1);
  match stride_of cfg1 with
  | Some s ->
    check Alcotest.int "capped at 64 segments" 64
      (Array.length s.Memo.Action.s_segs);
    (match s.Memo.Action.s_term with
     | Memo.Action.N_goto g ->
       check Alcotest.bool "terminal continues the chain" true
         (String.equal g.Memo.Action.target.Memo.Action.cfg_key (fake_key 66))
     | _ -> Alcotest.fail "expected goto terminal")
  | None -> Alcotest.fail "expected stride"

let test_stride_persist_roundtrip () =
  (* Strides must survive save/load structurally (the 'T' tag of
     FSPC0003): same segment count, same modeled bytes, reload fixpoint. *)
  let w = Workloads.Suite.find "compress" in
  let prog = w.Workloads.Workload.build 1 in
  let pc = Memo.Pcache.create () in
  let r =
    Fastsim.Sim.run ~engine:`Fast
      Fastsim.Sim.Spec.(with_pcache pc default)
      prog
  in
  ignore (r : Fastsim.Sim.result);
  (* count live strides in the freshly built cache *)
  let strides t =
    let n = ref 0 in
    Memo.Pcache.iter_configs
      (fun c ->
        match c.Memo.Action.cfg_group with
        | Some { Memo.Action.g_first = Memo.Action.N_stride _; _ } -> incr n
        | _ -> ())
      t;
    !n
  in
  check Alcotest.bool "run produced live strides" true (strides pc > 0);
  let path =
    Filename.concat (Filename.get_temp_dir_name ()) "fastsim_stride.fspc"
  in
  Memo.Persist.Codec.save_file pc ~program:prog path;
  let pc' = Memo.Persist.Codec.load_file ~program:prog path in
  check Alcotest.int "strides survive" (strides pc) (strides pc');
  check Alcotest.int "modeled bytes survive"
    (Memo.Pcache.counters pc).modeled_bytes
    (Memo.Pcache.counters pc').modeled_bytes;
  Memo.Persist.Codec.save_file pc' ~program:prog path;
  let pc'' = Memo.Persist.Codec.load_file ~program:prog path in
  check Alcotest.int "reload fixpoint: strides" (strides pc') (strides pc'');
  check Alcotest.int "reload fixpoint: actions"
    (Memo.Pcache.counters pc').static_actions
    (Memo.Pcache.counters pc'').static_actions;
  Sys.remove path;
  (* and a warm start from the stride-bearing cache is still equivalent *)
  let warm =
    Fastsim.Sim.run ~engine:`Fast
      Fastsim.Sim.Spec.(with_pcache pc' default)
      prog
  in
  let slow = Fastsim.Sim.run ~engine:`Slow Fastsim.Sim.Spec.default prog in
  check Alcotest.int "warm stride replay cycles" slow.Fastsim.Sim.cycles
    warm.Fastsim.Sim.cycles;
  check Alcotest.int "warm stride replay retired" slow.Fastsim.Sim.retired
    warm.Fastsim.Sim.retired

let suite =
  [ Alcotest.test_case "compact collapses linear run" `Quick
      test_compact_collapses_linear_run;
    Alcotest.test_case "compact refuses branchy chain" `Quick
      test_compact_refuses_branchy_chain;
    Alcotest.test_case "expand is exact inverse" `Quick
      test_expand_is_exact_inverse;
    Alcotest.test_case "merge triggers compaction" `Quick
      test_merge_triggers_compaction;
    Alcotest.test_case "stride length bounded" `Quick
      test_stride_length_bounded;
    Alcotest.test_case "stride persist roundtrip" `Quick
      test_stride_persist_roundtrip ]
