(* The open-addressed intern table behind the p-action cache hot path:
   deterministic unit checks plus a QCheck property comparing it against a
   reference Hashtbl model under random operation sequences — with hashes
   deliberately masked to 8 bits so probe sequences collide constantly. *)

let check = Alcotest.check

(* Collision-forcing hash: many distinct keys share a bucket, so linear
   probing, growth rehashing and clear/refill all get exercised. *)
let hash8 key = Uarch.Snapshot.hash_key key land 0xff

let test_basic () =
  let t = Memo.Ctable.create ~initial:2 () in
  check Alcotest.int "empty" 0 (Memo.Ctable.length t);
  Memo.Ctable.add t ~hash:(hash8 "a") "a" 1;
  Memo.Ctable.add t ~hash:(hash8 "b") "b" 2;
  check Alcotest.int "two entries" 2 (Memo.Ctable.length t);
  check (Alcotest.option Alcotest.int) "find a" (Some 1)
    (Memo.Ctable.find t ~hash:(hash8 "a") "a");
  check (Alcotest.option Alcotest.int) "find b" (Some 2)
    (Memo.Ctable.find t ~hash:(hash8 "b") "b");
  check (Alcotest.option Alcotest.int) "miss" None
    (Memo.Ctable.find t ~hash:(hash8 "c") "c");
  (* replace semantics *)
  Memo.Ctable.add t ~hash:(hash8 "a") "a" 17;
  check Alcotest.int "replace keeps length" 2 (Memo.Ctable.length t);
  check (Alcotest.option Alcotest.int) "replaced" (Some 17)
    (Memo.Ctable.find t ~hash:(hash8 "a") "a");
  Memo.Ctable.clear t;
  check Alcotest.int "cleared" 0 (Memo.Ctable.length t);
  check (Alcotest.option Alcotest.int) "cleared find" None
    (Memo.Ctable.find t ~hash:(hash8 "a") "a")

let test_empty_key_rejected () =
  let t = Memo.Ctable.create () in
  match Memo.Ctable.add t ~hash:0 "" 1 with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_find_bytes_matches_find () =
  let t = Memo.Ctable.create () in
  let keys = List.init 200 (fun i -> Printf.sprintf "key-%d" i) in
  List.iteri (fun i k -> Memo.Ctable.add t ~hash:(hash8 k) k i) keys;
  (* A probe through a scratch buffer larger than the key must behave
     exactly like the string lookup. *)
  List.iteri
    (fun i k ->
      let b = Bytes.make (String.length k + 7) '\xff' in
      Bytes.blit_string k 0 b 0 (String.length k);
      check (Alcotest.option Alcotest.int)
        (Printf.sprintf "bytes find %s" k)
        (Some i)
        (Memo.Ctable.find_bytes t ~hash:(hash8 k) b ~len:(String.length k)))
    keys;
  let b = Bytes.of_string "key-3XX" in
  check (Alcotest.option Alcotest.int) "prefix is not a hit" None
    (Memo.Ctable.find_bytes t ~hash:(hash8 "key-3XX") b ~len:7)

(* ---- model-based property ---- *)

type op = Add of string * int | Find of string | Find_bytes of string | Clear

let op_gen =
  let open QCheck.Gen in
  (* a small key universe maximises add/find interaction *)
  let key = map (Printf.sprintf "k%d") (int_bound 40) in
  frequency
    [ (6, map2 (fun k v -> Add (k, v)) key (int_bound 1000));
      (4, map (fun k -> Find k) key);
      (2, map (fun k -> Find_bytes k) key);
      (1, return Clear) ]

let pp_op = function
  | Add (k, v) -> Printf.sprintf "Add(%s,%d)" k v
  | Find k -> Printf.sprintf "Find %s" k
  | Find_bytes k -> Printf.sprintf "FindBytes %s" k
  | Clear -> "Clear"

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_range 1 400) op_gen)

let prop_matches_hashtbl ops =
  let t = Memo.Ctable.create ~initial:2 () in
  let model : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.for_all
    (fun op ->
      match op with
      | Add (k, v) ->
        Memo.Ctable.add t ~hash:(hash8 k) k v;
        Hashtbl.replace model k v;
        Memo.Ctable.length t = Hashtbl.length model
      | Find k ->
        Memo.Ctable.find t ~hash:(hash8 k) k = Hashtbl.find_opt model k
      | Find_bytes k ->
        let b = Bytes.of_string (k ^ "garbage") in
        Memo.Ctable.find_bytes t ~hash:(hash8 k) b ~len:(String.length k)
        = Hashtbl.find_opt model k
      | Clear ->
        Memo.Ctable.clear t;
        Hashtbl.reset model;
        Memo.Ctable.length t = 0)
    ops
  && Memo.Ctable.fold
       (fun k v ok -> ok && Hashtbl.find_opt model k = Some v)
       t true
  && Hashtbl.fold
       (fun k v ok -> ok && Memo.Ctable.find t ~hash:(hash8 k) k = Some v)
       model true

let model_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"ctable = Hashtbl under 8-bit hashes"
       ops_arb prop_matches_hashtbl)

let test_snapshot_hash_spread () =
  (* Sanity on the real hash: distinct snapshot-like keys should very
     rarely collide in 62 bits (here: never, over a few thousand). *)
  let seen = Hashtbl.create 4096 in
  let collisions = ref 0 in
  for i = 0 to 4095 do
    let k = Printf.sprintf "snapshot-key-%06d" i in
    let h = Uarch.Snapshot.hash_key k in
    if Hashtbl.mem seen h then incr collisions;
    Hashtbl.replace seen h ()
  done;
  check Alcotest.int "no 62-bit collisions in 4k keys" 0 !collisions

let suite =
  [ Alcotest.test_case "basic add/find/replace/clear" `Quick test_basic;
    Alcotest.test_case "empty key rejected" `Quick test_empty_key_rejected;
    Alcotest.test_case "find_bytes = find" `Quick test_find_bytes_matches_find;
    Alcotest.test_case "hash spread" `Quick test_snapshot_hash_spread;
    model_test ]
