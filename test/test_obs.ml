(* The observability layer: ring-buffer semantics, log2 histogram
   bucketing edge cases, registry find-or-create, phase profiling, and
   the exporters. The obs layer must also be strictly passive — that
   cross-engine property lives in Test_equivalence. *)

let check = Alcotest.check

(* ---------------------------------------------------------------- *)
(* Ring buffer                                                       *)

let test_ring_basic () =
  let r = Fastsim_obs.Ring.create ~capacity:4 in
  check Alcotest.int "empty length" 0 (Fastsim_obs.Ring.length r);
  Fastsim_obs.Ring.push r 1;
  Fastsim_obs.Ring.push r 2;
  check Alcotest.int "length" 2 (Fastsim_obs.Ring.length r);
  check Alcotest.(list int) "oldest first" [ 1; 2 ]
    (Fastsim_obs.Ring.to_list r);
  check Alcotest.int "no drops" 0 (Fastsim_obs.Ring.dropped r)

let test_ring_wraparound () =
  let r = Fastsim_obs.Ring.create ~capacity:4 in
  for i = 1 to 10 do
    Fastsim_obs.Ring.push r i
  done;
  check Alcotest.int "length capped" 4 (Fastsim_obs.Ring.length r);
  check Alcotest.int "capacity" 4 (Fastsim_obs.Ring.capacity r);
  check Alcotest.int "total pushed" 10 (Fastsim_obs.Ring.total_pushed r);
  check Alcotest.int "dropped" 6 (Fastsim_obs.Ring.dropped r);
  check
    Alcotest.(list int)
    "keeps newest, oldest first" [ 7; 8; 9; 10 ]
    (Fastsim_obs.Ring.to_list r);
  Fastsim_obs.Ring.clear r;
  check Alcotest.int "cleared" 0 (Fastsim_obs.Ring.length r);
  Fastsim_obs.Ring.push r 42;
  check Alcotest.(list int) "usable after clear" [ 42 ]
    (Fastsim_obs.Ring.to_list r)

let test_ring_capacity_one () =
  let r = Fastsim_obs.Ring.create ~capacity:1 in
  for i = 1 to 5 do
    Fastsim_obs.Ring.push r i
  done;
  check Alcotest.(list int) "keeps only newest" [ 5 ]
    (Fastsim_obs.Ring.to_list r);
  check Alcotest.int "dropped all but one" 4 (Fastsim_obs.Ring.dropped r);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Fastsim_obs.Ring.create ~capacity:0 : int Fastsim_obs.Ring.t))

(* ---------------------------------------------------------------- *)
(* log2 histogram bucketing                                          *)

let test_bucket_of () =
  let b = Fastsim_obs.Metrics.bucket_of in
  check Alcotest.int "0 -> bucket 0" 0 (b 0);
  check Alcotest.int "negative -> bucket 0" 0 (b (-17));
  check Alcotest.int "min_int -> bucket 0" 0 (b min_int);
  check Alcotest.int "1" 1 (b 1);
  check Alcotest.int "2" 2 (b 2);
  check Alcotest.int "3" 2 (b 3);
  check Alcotest.int "4" 3 (b 4);
  check Alcotest.int "7" 3 (b 7);
  check Alcotest.int "8" 4 (b 8);
  check Alcotest.int "1023" 10 (b 1023);
  check Alcotest.int "1024" 11 (b 1024);
  check Alcotest.int "max_int -> last bucket" 62 (b max_int);
  (* every bucket's lower bound maps back into that bucket *)
  for i = 1 to 62 do
    let lo = Fastsim_obs.Metrics.bucket_lower_bound i in
    check Alcotest.int
      (Printf.sprintf "lower_bound %d round-trips" i)
      i (b lo)
  done;
  check Alcotest.int "lower_bound 0" 0
    (Fastsim_obs.Metrics.bucket_lower_bound 0)

let test_histogram_observe () =
  let m = Fastsim_obs.Metrics.create () in
  let h = Fastsim_obs.Metrics.histogram m "h" in
  check Alcotest.int "empty count" 0 (Fastsim_obs.Metrics.h_count h);
  check Alcotest.(list (pair int int)) "empty buckets" []
    (Fastsim_obs.Metrics.h_buckets h);
  List.iter (Fastsim_obs.Metrics.observe h) [ 0; 1; 1; 3; 100; max_int ];
  check Alcotest.int "count" 6 (Fastsim_obs.Metrics.h_count h);
  check Alcotest.int "min" 0 (Fastsim_obs.Metrics.h_min h);
  check Alcotest.int "max" max_int (Fastsim_obs.Metrics.h_max h);
  (* sum wraps on max_int + 105; only check it's consistent *)
  check Alcotest.int "sum" (0 + 1 + 1 + 3 + 100 + max_int)
    (Fastsim_obs.Metrics.h_sum h);
  let buckets = Fastsim_obs.Metrics.h_buckets h in
  check Alcotest.(list (pair int int)) "buckets: lower bound * count"
    [ (0, 1); (1, 2); (2, 1); (64, 1); (1 lsl 61, 1) ]
    buckets;
  (* ascending and only non-empty *)
  let lowers = List.map fst buckets in
  check Alcotest.(list int) "ascending" (List.sort compare lowers) lowers

(* ---------------------------------------------------------------- *)
(* Metrics registry                                                  *)

let test_registry_find_or_create () =
  let m = Fastsim_obs.Metrics.create () in
  let a = Fastsim_obs.Metrics.counter m "hits" in
  let b = Fastsim_obs.Metrics.counter m "hits" in
  Fastsim_obs.Metrics.incr a;
  Fastsim_obs.Metrics.add b 2;
  check Alcotest.int "same underlying counter" 3
    (Fastsim_obs.Metrics.counter_value a);
  let g = Fastsim_obs.Metrics.gauge m "depth" in
  Fastsim_obs.Metrics.set g 7.5;
  check (Alcotest.float 0.) "gauge" 7.5 (Fastsim_obs.Metrics.gauge_value g)

let test_registry_kind_mismatch () =
  let m = Fastsim_obs.Metrics.create () in
  ignore (Fastsim_obs.Metrics.counter m "x" : Fastsim_obs.Metrics.counter);
  match Fastsim_obs.Metrics.histogram m "x" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ---------------------------------------------------------------- *)
(* Profiling                                                         *)

let test_profile_phases () =
  let p = Fastsim_obs.Profile.create () in
  Fastsim_obs.Profile.enter p Fastsim_obs.Profile.Detailed;
  Fastsim_obs.Profile.with_phase p Fastsim_obs.Profile.Cachesim (fun () ->
      ignore (Sys.opaque_identity (Array.make 1000 0) : int array));
  Fastsim_obs.Profile.leave p;
  Fastsim_obs.Profile.leave p (* unbalanced: must be a no-op *);
  Fastsim_obs.Profile.stop p;
  Fastsim_obs.Profile.stop p (* idempotent *);
  let s ph = Fastsim_obs.Profile.seconds p ph in
  check Alcotest.bool "phases non-negative" true
    (List.for_all (fun ph -> s ph >= 0.) Fastsim_obs.Profile.all_phases);
  let sum =
    List.fold_left (fun acc ph -> acc +. s ph) 0.
      Fastsim_obs.Profile.all_phases
  in
  (* exclusive accounting: per-phase seconds sum to the total *)
  check Alcotest.bool "sum = total" true
    (abs_float (sum -. Fastsim_obs.Profile.total p) < 1e-9);
  check Alcotest.string "phase name" "detailed"
    (Fastsim_obs.Profile.phase_name Fastsim_obs.Profile.Detailed)

(* ---------------------------------------------------------------- *)
(* JSON + exporters                                                  *)

let test_json_printer () =
  let open Fastsim_obs.Json in
  check Alcotest.string "escaping" {|{"a\"b":"x\ny","n":null}|}
    (to_string (Obj [ ("a\"b", Str "x\ny"); ("n", Null) ]));
  check Alcotest.string "non-finite floats are null" {|[null,null,1.5]|}
    (to_string (List [ Float nan; Float infinity; Float 1.5 ]));
  check Alcotest.string "ints and bools" {|[1,-2,true,false]|}
    (to_string (List [ Int 1; Int (-2); Bool true; Bool false ]))

(* \u escapes must decode to valid UTF-8: surrogate pairs combine into
   one code point, lone surrogates become U+FFFD (never raw CESU-8). *)
let test_json_unicode_escapes () =
  let open Fastsim_obs.Json in
  let str s = match of_string s with Str v -> v | _ -> Alcotest.fail s in
  check Alcotest.string "surrogate pair combines" "\xf0\x9f\x98\x80"
    (str "\"\\ud83d\\ude00\"");
  check Alcotest.string "high surrogate then non-surrogate \\u escape"
    "\xef\xbf\xbdA" (str "\"\\ud800\\u0041\"");
  check Alcotest.string "lone high surrogate" "\xef\xbf\xbdx"
    (str "\"\\ud800x\"");
  check Alcotest.string "lone low surrogate" "\xef\xbf\xbd"
    (str "\"\\udc00\"");
  check Alcotest.string "2- and 3-byte code points" "\xc3\xa9\xe2\x82\xac"
    (str "\"\\u00e9\\u20ac\"")

let test_export_chrome () =
  let tr = Fastsim_obs.Trace.create ~capacity:8 () in
  Fastsim_obs.Trace.emit tr
    (Fastsim_obs.Event.span_begin ~ts:10 ~cat:"engine" "detailed");
  Fastsim_obs.Trace.emit tr
    (Fastsim_obs.Event.instant ~ts:11 ~cat:"core" "rollback"
       ~args:[ ("index", Fastsim_obs.Json.Int 3) ]);
  Fastsim_obs.Trace.emit tr
    (Fastsim_obs.Event.counter ~ts:12 ~cat:"engine" "retired" 7);
  Fastsim_obs.Trace.emit tr
    (Fastsim_obs.Event.span_end ~ts:20 ~cat:"engine" "detailed");
  let s = Fastsim_obs.Json.to_string (Fastsim_obs.Export.chrome_json tr) in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  check Alcotest.bool "has traceEvents" true (contains {|"traceEvents"|});
  check Alcotest.bool "has B phase" true (contains {|"ph":"B"|});
  check Alcotest.bool "has E phase" true (contains {|"ph":"E"|});
  check Alcotest.bool "has counter" true (contains {|"ph":"C"|});
  check Alcotest.bool "has thread metadata" true
    (contains {|"thread_name"|});
  check Alcotest.bool "no drop marker when ring held" false
    (contains {|fastsimDroppedEvents|})

let test_export_files () =
  let tr = Fastsim_obs.Trace.create ~capacity:2 () in
  for i = 1 to 5 do
    Fastsim_obs.Trace.emit tr
      (Fastsim_obs.Event.instant ~ts:i ~cat:"memo" "group_replayed")
  done;
  check Alcotest.int "ring dropped" 3 (Fastsim_obs.Trace.dropped tr);
  let tmp = Filename.temp_file "fastsim_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Fastsim_obs.Export.write_jsonl_file tmp tr;
      let ic = open_in tmp in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      (* dropped-marker line + the 2 surviving events *)
      check Alcotest.int "jsonl lines" 3 (List.length !lines);
      check Alcotest.bool "first line is the drop marker" true
        (match List.rev !lines with
         | first :: _ ->
           first = {|{"meta":"dropped","dropped":3}|}
         | [] -> false))

(* ---------------------------------------------------------------- *)
(* Structured logging                                                *)

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  List.rev !lines

let test_log_roundtrip () =
  let module Log = Fastsim_obs.Log in
  let module J = Fastsim_obs.Json in
  let tmp = Filename.temp_file "fastsim_log" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let log = Log.open_file ~level:Log.Debug tmp in
      Log.info log ~req:"r1" ~event:"serve.accepted"
        [ ("engine", J.Str "fast"); ("queue_depth", J.Int 3) ];
      Log.debug log ~event:"pool.spawn" [ ("pid", J.Int 42) ];
      Log.close log;
      Log.close log (* idempotent *);
      match read_lines tmp with
      | [ l1; l2 ] ->
        (* fixed key order: ts, level, event, [req], caller fields *)
        (match J.of_string l1 with
         | J.Obj [ ("ts", J.Float _); ("level", J.Str "info");
                   ("event", J.Str "serve.accepted"); ("req", J.Str "r1");
                   ("engine", J.Str "fast"); ("queue_depth", J.Int 3) ] ->
           ()
         | _ -> Alcotest.failf "unexpected record shape: %s" l1);
        (match J.of_string l2 with
         | J.Obj (("ts", J.Float _) :: ("level", J.Str "debug")
                  :: ("event", J.Str "pool.spawn") :: rest) ->
           check Alcotest.bool "no req key when absent" false
             (List.mem_assoc "req" rest)
         | _ -> Alcotest.failf "unexpected record shape: %s" l2)
      | lines -> Alcotest.failf "expected 2 lines, got %d" (List.length lines))

let test_log_level_filter () =
  let module Log = Fastsim_obs.Log in
  let tmp = Filename.temp_file "fastsim_log" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let log = Log.open_file ~level:Log.Warn tmp in
      check Alcotest.bool "debug disabled" false (Log.enabled log Log.Debug);
      check Alcotest.bool "warn enabled" true (Log.enabled log Log.Warn);
      Log.debug log ~event:"a" [];
      Log.info log ~event:"b" [];
      Log.warn log ~event:"c" [];
      Log.error log ~event:"d" [];
      Log.close log;
      check Alcotest.int "only warn and error written" 2
        (List.length (read_lines tmp));
      (* the null logger accepts everything and writes nothing *)
      Log.error Log.null ~event:"x" [];
      check Alcotest.bool "null logger disabled" false
        (Log.enabled Log.null Log.Error);
      match Log.level_of_string "warn" with
      | Ok Log.Warn -> (
        match Log.level_of_string "loud" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "bad level accepted")
      | _ -> Alcotest.fail "level_of_string warn")

(* ---------------------------------------------------------------- *)
(* Wall-clock spans and Chrome stitching                             *)

let test_span_collector () =
  let module Span = Fastsim_obs.Span in
  let c = Span.create () in
  Span.record c ~name:"first" ~start_us:100 ~end_us:150 ();
  Span.record c ~name:"clamped" ~start_us:200 ~end_us:50 ();
  let r = Span.with_span c ~name:"timed" ~cat:"pool" (fun () -> 7) in
  check Alcotest.int "with_span returns f's value" 7 r;
  (try
     Span.with_span c ~name:"raises" (fun () -> failwith "boom")
   with Failure _ -> ());
  check Alcotest.int "all four recorded" 4 (Span.length c);
  match Span.spans c with
  | [ s1; s2; s3; s4 ] ->
    check Alcotest.string "recording order" "first" s1.Span.name;
    check Alcotest.int "duration" 50 s1.Span.dur_us;
    check Alcotest.int "negative duration clamps" 0 s2.Span.dur_us;
    check Alcotest.string "cat" "pool" s3.Span.cat;
    check Alcotest.string "span recorded on raise" "raises" s4.Span.name;
    check Alcotest.int "pid is ours" (Unix.getpid ()) s1.Span.pid
  | _ -> Alcotest.fail "span list shape"

let test_span_json_roundtrip () =
  let module Span = Fastsim_obs.Span in
  let module J = Fastsim_obs.Json in
  let s =
    { Span.name = "engine.run"; cat = "worker"; pid = 1234;
      start_us = 17_000_000; dur_us = 250;
      args = [ ("engine", J.Str "fast"); ("req", J.Str "r1-9") ] }
  in
  let rt1 = Span.of_json (J.of_string (J.to_string (Span.to_json s))) in
  (match rt1 with
   | Ok s' ->
     check Alcotest.string "span round-trip"
       (J.to_string (Span.to_json s)) (J.to_string (Span.to_json s'))
   | Error m -> Alcotest.failf "span decode: %s" m);
  let ss = [ s; { s with Span.name = "pcache.save"; args = [] } ] in
  (match Span.list_of_json (Span.list_to_json ss) with
   | Ok ss' ->
     check Alcotest.string "span list round-trip"
       (J.to_string (Span.list_to_json ss))
       (J.to_string (Span.list_to_json ss'))
   | Error m -> Alcotest.failf "span list decode: %s" m);
  match Span.of_json (J.Obj [ ("name", J.Str "x") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "partial span accepted"

(* Two processes' spans (same wall clock, different pids) stitch into
   one Chrome trace: a process_name metadata record per pid, X events
   normalised to the earliest start. *)
let test_span_chrome_stitch () =
  let module Span = Fastsim_obs.Span in
  let module J = Fastsim_obs.Json in
  let mk pid name start_us dur_us =
    { Span.name; cat = "serve"; pid; start_us; dur_us;
      args = [ ("req", J.Str "r7") ] }
  in
  let spans =
    [ mk 100 "request.run" 1_000_050 900;
      mk 200 "engine.run" 1_000_100 700;
      mk 100 "queue.wait" 1_000_000 50 ]
  in
  let j = Span.chrome_json ~process_names:[ (100, "fastsim-serve") ] spans in
  let events =
    match J.member "traceEvents" j with
    | J.List es -> es
    | _ -> Alcotest.fail "no traceEvents"
  in
  let metas, xs =
    List.partition
      (fun e -> J.to_str (J.member "ph" e) = "M")
      events
  in
  check Alcotest.int "one process_name per pid" 2 (List.length metas);
  let meta_name pid =
    List.filter_map
      (fun e ->
        if J.to_int (J.member "pid" e) = pid then
          Some (J.to_str (J.member "name" (J.member "args" e)))
        else None)
      metas
  in
  check Alcotest.(list string) "named pid" [ "fastsim-serve" ] (meta_name 100);
  check Alcotest.(list string) "default pid name" [ "pid-200" ] (meta_name 200);
  check Alcotest.int "three X events" 3 (List.length xs);
  let ts_of name =
    match
      List.find_opt (fun e -> J.to_str (J.member "name" e) = name) xs
    with
    | Some e -> J.to_int (J.member "ts" e)
    | None -> Alcotest.failf "missing event %s" name
  in
  check Alcotest.int "earliest span normalised to 0" 0 (ts_of "queue.wait");
  check Alcotest.int "worker span offset kept" 100 (ts_of "engine.run");
  List.iter
    (fun e ->
      check Alcotest.string "req arg survives" "r7"
        (J.to_str (J.member "req" (J.member "args" e))))
    xs

let test_span_ctx () =
  let module Span = Fastsim_obs.Span in
  let module J = Fastsim_obs.Json in
  let ctx = Span.Ctx.create ~id:"req-9" () in
  check Alcotest.string "explicit id kept" "req-9" (Span.Ctx.id ctx);
  Span.record (Span.Ctx.collector ctx) ~name:"a" ~start_us:1 ~end_us:2 ();
  Span.record (Span.Ctx.collector ctx) ~name:"b" ~start_us:2 ~end_us:3 ();
  let tagged = Span.Ctx.finish ctx in
  check Alcotest.int "both spans" 2 (List.length tagged);
  List.iter
    (fun s ->
      match List.assoc_opt "req" s.Span.args with
      | Some (J.Str "req-9") -> ()
      | _ -> Alcotest.failf "span %s not tagged with req id" s.Span.name)
    tagged;
  let a = Span.Ctx.create () and b = Span.Ctx.create () in
  check Alcotest.bool "minted ids are unique" true
    (Span.Ctx.id a <> Span.Ctx.id b)

(* ---------------------------------------------------------------- *)
(* Deterministic export ordering                                     *)

(* Two registries holding the same state, registered in opposite
   orders, export byte-identical JSON and Prometheus text. *)
let test_sorted_export_order () =
  let module M = Fastsim_obs.Metrics in
  let fill order m =
    List.iter
      (fun name -> M.add (M.counter m name) (String.length name))
      order;
    M.set (M.gauge m "z.gauge") 1.5;
    M.set (M.gauge m "a.gauge") 2.5;
    List.iter (M.observe (M.histogram m "h.lat")) [ 1; 5; 9 ]
  in
  let m1 = M.create () and m2 = M.create () in
  fill [ "b.two"; "a.one"; "c.three" ] m1;
  fill [ "c.three"; "b.two"; "a.one" ] m2;
  check
    Alcotest.(list string)
    "names_in_order sorted"
    [ "a.gauge"; "a.one"; "b.two"; "c.three"; "h.lat"; "z.gauge" ]
    (M.names_in_order m1);
  check Alcotest.string "registration order invisible in JSON"
    (Fastsim_obs.Json.to_string (M.to_json m1))
    (Fastsim_obs.Json.to_string (M.to_json m2));
  check Alcotest.string "registration order invisible in Prometheus"
    (Fastsim_obs.Export.prometheus m1)
    (Fastsim_obs.Export.prometheus m2)

(* ---------------------------------------------------------------- *)
(* Snapshots: diff, merge, quantiles, JSON codec                     *)

let test_snapshot_diff_merge () =
  let module M = Fastsim_obs.Metrics in
  let m = M.create () in
  let c = M.counter m "c" and g = M.gauge m "g" and h = M.histogram m "h" in
  M.add c 5;
  M.set g 3.0;
  List.iter (M.observe h) [ 1; 4 ];
  let before = M.snapshot m in
  M.add c 2;
  M.set g 9.0;
  List.iter (M.observe h) [ 4; 100 ];
  let after = M.snapshot m in
  let d = M.snapshot_diff ~after ~before in
  check Alcotest.(list (pair string int)) "counter delta" [ ("c", 2) ]
    d.M.s_counters;
  check Alcotest.(list (pair string (float 0.))) "gauge keeps after"
    [ ("g", 9.0) ] d.M.s_gauges;
  (match d.M.s_histograms with
   | [ ("h", hs) ] ->
     check Alcotest.int "interval count" 2 hs.M.s_count;
     check Alcotest.int "interval sum" 104 hs.M.s_sum;
     check Alcotest.(list (pair int int)) "interval buckets"
       [ (4, 1); (64, 1) ] hs.M.s_buckets
   | _ -> Alcotest.fail "histogram diff shape");
  (* a name only present in [after] diffs against empty *)
  let late = M.counter m "late" in
  M.incr late;
  let after2 = M.snapshot m in
  let d2 = M.snapshot_diff ~after:after2 ~before in
  check Alcotest.(option int) "new counter vs empty" (Some 1)
    (List.assoc_opt "late" d2.M.s_counters);
  (* merge adds counters and histogram buckets *)
  let merged = M.snapshot_merge before d in
  check Alcotest.(option int) "merged counter" (Some 7)
    (List.assoc_opt "c" merged.M.s_counters);
  match List.assoc_opt "h" merged.M.s_histograms with
  | Some hs ->
    check Alcotest.int "merged count" 4 hs.M.s_count;
    check Alcotest.(list (pair int int)) "merged buckets"
      [ (1, 1); (4, 2); (64, 1) ] hs.M.s_buckets
  | None -> Alcotest.fail "merged histogram missing"

let test_snapshot_json_roundtrip () =
  let module M = Fastsim_obs.Metrics in
  let m = M.create () in
  M.add (M.counter m "serve.requests") 11;
  M.set (M.gauge m "queue.depth") 2.5;
  List.iter (M.observe (M.histogram m "lat")) [ 0; 1; 1; 3; 900 ];
  ignore (M.histogram m "empty" : M.histogram);
  let s = M.snapshot m in
  let j = Fastsim_obs.Json.to_string (M.snapshot_to_json s) in
  match M.snapshot_of_json (Fastsim_obs.Json.of_string j) with
  | Error e -> Alcotest.failf "snapshot decode: %s" e
  | Ok s' ->
    check Alcotest.string "snapshot JSON round-trip" j
      (Fastsim_obs.Json.to_string (M.snapshot_to_json s'));
    check Alcotest.bool "structural equality" true (s = s')

let test_hsnap_quantile () =
  let module M = Fastsim_obs.Metrics in
  let m = M.create () in
  let h = M.histogram m "q" in
  check (Alcotest.float 0.) "empty quantile" 0.
    (M.hsnap_quantile
       (List.assoc "q" (M.snapshot m).M.s_histograms)
       0.5);
  (* 90 fast samples at ~10µs, 10 slow ones at ~5000µs: p50 must sit in
     the fast bucket, p99 in the slow one, both clamped into [min,max] *)
  for _ = 1 to 90 do
    M.observe h 10
  done;
  for _ = 1 to 10 do
    M.observe h 5000
  done;
  let hs = List.assoc "q" (M.snapshot m).M.s_histograms in
  let p50 = M.hsnap_quantile hs 0.5 and p99 = M.hsnap_quantile hs 0.99 in
  check Alcotest.bool "p50 in fast bucket (factor 2)" true
    (p50 >= 10. && p50 <= 16.);
  check Alcotest.bool "p99 in slow bucket (factor 2)" true
    (p99 >= 4096. && p99 <= 5000.);
  check Alcotest.bool "quantiles clamped to observed range" true
    (p50 >= float_of_int hs.M.s_min && p99 <= float_of_int hs.M.s_max)

(* QCheck: for any split of a sample stream into (early, late), the
   snapshot taken after [early] and the one after [early @ late] are
   related by diff/merge — diff recovers [late]'s counts exactly, and
   merging the diff back onto [before] reconstructs [after]. *)
let qcheck_snapshot_diff_merge =
  let gen = QCheck.(pair (list (int_bound 10_000)) (list (int_bound 10_000))) in
  QCheck.Test.make ~name:"snapshot diff/merge reconstructs" ~count:100 gen
    (fun (early, late) ->
      let module M = Fastsim_obs.Metrics in
      let m = M.create () in
      let c = M.counter m "n" and h = M.histogram m "h" in
      List.iter
        (fun v ->
          M.add c v;
          M.observe h v)
        early;
      let before = M.snapshot m in
      List.iter
        (fun v ->
          M.add c v;
          M.observe h v)
        late;
      let after = M.snapshot m in
      let d = M.snapshot_diff ~after ~before in
      let dh = List.assoc "h" d.M.s_histograms in
      let sum = List.fold_left ( + ) 0 in
      let ok_diff =
        List.assoc "n" d.M.s_counters = sum late
        && dh.M.s_count = List.length late
        && dh.M.s_sum = sum late
      in
      (* reconstruct: merge(before, diff) = after for counters and
         histogram count/sum/buckets (min/max carry after's values
         only when the interval saw samples, so compare those fields) *)
      let r = M.snapshot_merge before d in
      let rh = List.assoc "h" r.M.s_histograms
      and ah = List.assoc "h" after.M.s_histograms in
      let ok_merge =
        r.M.s_counters = after.M.s_counters
        && rh.M.s_count = ah.M.s_count
        && rh.M.s_sum = ah.M.s_sum
        && rh.M.s_buckets = ah.M.s_buckets
      in
      ok_diff && ok_merge)

let qcheck_snapshot_json =
  QCheck.Test.make ~name:"snapshot JSON round-trips" ~count:100
    QCheck.(list small_nat)
    (fun samples ->
      let module M = Fastsim_obs.Metrics in
      let m = M.create () in
      M.add (M.counter m "c") (List.length samples);
      List.iter (M.observe (M.histogram m "h")) samples;
      let s = M.snapshot m in
      match M.snapshot_of_json (M.snapshot_to_json s) with
      | Ok s' -> s = s'
      | Error _ -> false)

(* ---------------------------------------------------------------- *)
(* Prometheus text exposition                                        *)

let test_prometheus_text () =
  let module M = Fastsim_obs.Metrics in
  let m = M.create () in
  M.add (M.counter m "serve.requests") 3;
  M.set (M.gauge m "registry.hot_bytes") 4096.;
  let h = M.histogram m "serve.queue_wait_us" in
  List.iter (M.observe h) [ 0; 1; 1; 3 ];
  check Alcotest.string "prometheus text"
    (String.concat "\n"
       [ "# TYPE fastsim_serve_requests counter";
         "fastsim_serve_requests 3";
         "# TYPE fastsim_registry_hot_bytes gauge";
         "fastsim_registry_hot_bytes 4096";
         "# TYPE fastsim_serve_queue_wait_us histogram";
         "fastsim_serve_queue_wait_us_bucket{le=\"0\"} 1";
         "fastsim_serve_queue_wait_us_bucket{le=\"1\"} 3";
         "fastsim_serve_queue_wait_us_bucket{le=\"3\"} 4";
         "fastsim_serve_queue_wait_us_bucket{le=\"+Inf\"} 4";
         "fastsim_serve_queue_wait_us_sum 5";
         "fastsim_serve_queue_wait_us_count 4";
         "" ])
    (Fastsim_obs.Export.prometheus m)

let suite =
  [ Alcotest.test_case "ring basic" `Quick test_ring_basic;
    Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "ring capacity 1" `Quick test_ring_capacity_one;
    Alcotest.test_case "bucket_of edges" `Quick test_bucket_of;
    Alcotest.test_case "histogram observe" `Quick test_histogram_observe;
    Alcotest.test_case "registry find-or-create" `Quick
      test_registry_find_or_create;
    Alcotest.test_case "registry kind mismatch" `Quick
      test_registry_kind_mismatch;
    Alcotest.test_case "profile phases" `Quick test_profile_phases;
    Alcotest.test_case "json printer" `Quick test_json_printer;
    Alcotest.test_case "json \\u escape decoding" `Quick
      test_json_unicode_escapes;
    Alcotest.test_case "chrome export" `Quick test_export_chrome;
    Alcotest.test_case "file export + drop marker" `Quick test_export_files;
    Alcotest.test_case "log JSONL round-trip" `Quick test_log_roundtrip;
    Alcotest.test_case "log level filtering" `Quick test_log_level_filter;
    Alcotest.test_case "span collector" `Quick test_span_collector;
    Alcotest.test_case "span JSON round-trip" `Quick
      test_span_json_roundtrip;
    Alcotest.test_case "chrome stitch across pids" `Quick
      test_span_chrome_stitch;
    Alcotest.test_case "request context tags spans" `Quick test_span_ctx;
    Alcotest.test_case "exports are order-deterministic" `Quick
      test_sorted_export_order;
    Alcotest.test_case "snapshot diff and merge" `Quick
      test_snapshot_diff_merge;
    Alcotest.test_case "snapshot JSON round-trip" `Quick
      test_snapshot_json_roundtrip;
    Alcotest.test_case "histogram quantiles" `Quick test_hsnap_quantile;
    QCheck_alcotest.to_alcotest qcheck_snapshot_diff_merge;
    QCheck_alcotest.to_alcotest qcheck_snapshot_json;
    Alcotest.test_case "prometheus exposition" `Quick test_prometheus_text ]
