(* The observability layer: ring-buffer semantics, log2 histogram
   bucketing edge cases, registry find-or-create, phase profiling, and
   the exporters. The obs layer must also be strictly passive — that
   cross-engine property lives in Test_equivalence. *)

let check = Alcotest.check

(* ---------------------------------------------------------------- *)
(* Ring buffer                                                       *)

let test_ring_basic () =
  let r = Fastsim_obs.Ring.create ~capacity:4 in
  check Alcotest.int "empty length" 0 (Fastsim_obs.Ring.length r);
  Fastsim_obs.Ring.push r 1;
  Fastsim_obs.Ring.push r 2;
  check Alcotest.int "length" 2 (Fastsim_obs.Ring.length r);
  check Alcotest.(list int) "oldest first" [ 1; 2 ]
    (Fastsim_obs.Ring.to_list r);
  check Alcotest.int "no drops" 0 (Fastsim_obs.Ring.dropped r)

let test_ring_wraparound () =
  let r = Fastsim_obs.Ring.create ~capacity:4 in
  for i = 1 to 10 do
    Fastsim_obs.Ring.push r i
  done;
  check Alcotest.int "length capped" 4 (Fastsim_obs.Ring.length r);
  check Alcotest.int "capacity" 4 (Fastsim_obs.Ring.capacity r);
  check Alcotest.int "total pushed" 10 (Fastsim_obs.Ring.total_pushed r);
  check Alcotest.int "dropped" 6 (Fastsim_obs.Ring.dropped r);
  check
    Alcotest.(list int)
    "keeps newest, oldest first" [ 7; 8; 9; 10 ]
    (Fastsim_obs.Ring.to_list r);
  Fastsim_obs.Ring.clear r;
  check Alcotest.int "cleared" 0 (Fastsim_obs.Ring.length r);
  Fastsim_obs.Ring.push r 42;
  check Alcotest.(list int) "usable after clear" [ 42 ]
    (Fastsim_obs.Ring.to_list r)

let test_ring_capacity_one () =
  let r = Fastsim_obs.Ring.create ~capacity:1 in
  for i = 1 to 5 do
    Fastsim_obs.Ring.push r i
  done;
  check Alcotest.(list int) "keeps only newest" [ 5 ]
    (Fastsim_obs.Ring.to_list r);
  check Alcotest.int "dropped all but one" 4 (Fastsim_obs.Ring.dropped r);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Fastsim_obs.Ring.create ~capacity:0 : int Fastsim_obs.Ring.t))

(* ---------------------------------------------------------------- *)
(* log2 histogram bucketing                                          *)

let test_bucket_of () =
  let b = Fastsim_obs.Metrics.bucket_of in
  check Alcotest.int "0 -> bucket 0" 0 (b 0);
  check Alcotest.int "negative -> bucket 0" 0 (b (-17));
  check Alcotest.int "min_int -> bucket 0" 0 (b min_int);
  check Alcotest.int "1" 1 (b 1);
  check Alcotest.int "2" 2 (b 2);
  check Alcotest.int "3" 2 (b 3);
  check Alcotest.int "4" 3 (b 4);
  check Alcotest.int "7" 3 (b 7);
  check Alcotest.int "8" 4 (b 8);
  check Alcotest.int "1023" 10 (b 1023);
  check Alcotest.int "1024" 11 (b 1024);
  check Alcotest.int "max_int -> last bucket" 62 (b max_int);
  (* every bucket's lower bound maps back into that bucket *)
  for i = 1 to 62 do
    let lo = Fastsim_obs.Metrics.bucket_lower_bound i in
    check Alcotest.int
      (Printf.sprintf "lower_bound %d round-trips" i)
      i (b lo)
  done;
  check Alcotest.int "lower_bound 0" 0
    (Fastsim_obs.Metrics.bucket_lower_bound 0)

let test_histogram_observe () =
  let m = Fastsim_obs.Metrics.create () in
  let h = Fastsim_obs.Metrics.histogram m "h" in
  check Alcotest.int "empty count" 0 (Fastsim_obs.Metrics.h_count h);
  check Alcotest.(list (pair int int)) "empty buckets" []
    (Fastsim_obs.Metrics.h_buckets h);
  List.iter (Fastsim_obs.Metrics.observe h) [ 0; 1; 1; 3; 100; max_int ];
  check Alcotest.int "count" 6 (Fastsim_obs.Metrics.h_count h);
  check Alcotest.int "min" 0 (Fastsim_obs.Metrics.h_min h);
  check Alcotest.int "max" max_int (Fastsim_obs.Metrics.h_max h);
  (* sum wraps on max_int + 105; only check it's consistent *)
  check Alcotest.int "sum" (0 + 1 + 1 + 3 + 100 + max_int)
    (Fastsim_obs.Metrics.h_sum h);
  let buckets = Fastsim_obs.Metrics.h_buckets h in
  check Alcotest.(list (pair int int)) "buckets: lower bound * count"
    [ (0, 1); (1, 2); (2, 1); (64, 1); (1 lsl 61, 1) ]
    buckets;
  (* ascending and only non-empty *)
  let lowers = List.map fst buckets in
  check Alcotest.(list int) "ascending" (List.sort compare lowers) lowers

(* ---------------------------------------------------------------- *)
(* Metrics registry                                                  *)

let test_registry_find_or_create () =
  let m = Fastsim_obs.Metrics.create () in
  let a = Fastsim_obs.Metrics.counter m "hits" in
  let b = Fastsim_obs.Metrics.counter m "hits" in
  Fastsim_obs.Metrics.incr a;
  Fastsim_obs.Metrics.add b 2;
  check Alcotest.int "same underlying counter" 3
    (Fastsim_obs.Metrics.counter_value a);
  let g = Fastsim_obs.Metrics.gauge m "depth" in
  Fastsim_obs.Metrics.set g 7.5;
  check (Alcotest.float 0.) "gauge" 7.5 (Fastsim_obs.Metrics.gauge_value g)

let test_registry_kind_mismatch () =
  let m = Fastsim_obs.Metrics.create () in
  ignore (Fastsim_obs.Metrics.counter m "x" : Fastsim_obs.Metrics.counter);
  match Fastsim_obs.Metrics.histogram m "x" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ---------------------------------------------------------------- *)
(* Profiling                                                         *)

let test_profile_phases () =
  let p = Fastsim_obs.Profile.create () in
  Fastsim_obs.Profile.enter p Fastsim_obs.Profile.Detailed;
  Fastsim_obs.Profile.with_phase p Fastsim_obs.Profile.Cachesim (fun () ->
      ignore (Sys.opaque_identity (Array.make 1000 0) : int array));
  Fastsim_obs.Profile.leave p;
  Fastsim_obs.Profile.leave p (* unbalanced: must be a no-op *);
  Fastsim_obs.Profile.stop p;
  Fastsim_obs.Profile.stop p (* idempotent *);
  let s ph = Fastsim_obs.Profile.seconds p ph in
  check Alcotest.bool "phases non-negative" true
    (List.for_all (fun ph -> s ph >= 0.) Fastsim_obs.Profile.all_phases);
  let sum =
    List.fold_left (fun acc ph -> acc +. s ph) 0.
      Fastsim_obs.Profile.all_phases
  in
  (* exclusive accounting: per-phase seconds sum to the total *)
  check Alcotest.bool "sum = total" true
    (abs_float (sum -. Fastsim_obs.Profile.total p) < 1e-9);
  check Alcotest.string "phase name" "detailed"
    (Fastsim_obs.Profile.phase_name Fastsim_obs.Profile.Detailed)

(* ---------------------------------------------------------------- *)
(* JSON + exporters                                                  *)

let test_json_printer () =
  let open Fastsim_obs.Json in
  check Alcotest.string "escaping" {|{"a\"b":"x\ny","n":null}|}
    (to_string (Obj [ ("a\"b", Str "x\ny"); ("n", Null) ]));
  check Alcotest.string "non-finite floats are null" {|[null,null,1.5]|}
    (to_string (List [ Float nan; Float infinity; Float 1.5 ]));
  check Alcotest.string "ints and bools" {|[1,-2,true,false]|}
    (to_string (List [ Int 1; Int (-2); Bool true; Bool false ]))

(* \u escapes must decode to valid UTF-8: surrogate pairs combine into
   one code point, lone surrogates become U+FFFD (never raw CESU-8). *)
let test_json_unicode_escapes () =
  let open Fastsim_obs.Json in
  let str s = match of_string s with Str v -> v | _ -> Alcotest.fail s in
  check Alcotest.string "surrogate pair combines" "\xf0\x9f\x98\x80"
    (str "\"\\ud83d\\ude00\"");
  check Alcotest.string "high surrogate then non-surrogate \\u escape"
    "\xef\xbf\xbdA" (str "\"\\ud800\\u0041\"");
  check Alcotest.string "lone high surrogate" "\xef\xbf\xbdx"
    (str "\"\\ud800x\"");
  check Alcotest.string "lone low surrogate" "\xef\xbf\xbd"
    (str "\"\\udc00\"");
  check Alcotest.string "2- and 3-byte code points" "\xc3\xa9\xe2\x82\xac"
    (str "\"\\u00e9\\u20ac\"")

let test_export_chrome () =
  let tr = Fastsim_obs.Trace.create ~capacity:8 () in
  Fastsim_obs.Trace.emit tr
    (Fastsim_obs.Event.span_begin ~ts:10 ~cat:"engine" "detailed");
  Fastsim_obs.Trace.emit tr
    (Fastsim_obs.Event.instant ~ts:11 ~cat:"core" "rollback"
       ~args:[ ("index", Fastsim_obs.Json.Int 3) ]);
  Fastsim_obs.Trace.emit tr
    (Fastsim_obs.Event.counter ~ts:12 ~cat:"engine" "retired" 7);
  Fastsim_obs.Trace.emit tr
    (Fastsim_obs.Event.span_end ~ts:20 ~cat:"engine" "detailed");
  let s = Fastsim_obs.Json.to_string (Fastsim_obs.Export.chrome_json tr) in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  check Alcotest.bool "has traceEvents" true (contains {|"traceEvents"|});
  check Alcotest.bool "has B phase" true (contains {|"ph":"B"|});
  check Alcotest.bool "has E phase" true (contains {|"ph":"E"|});
  check Alcotest.bool "has counter" true (contains {|"ph":"C"|});
  check Alcotest.bool "has thread metadata" true
    (contains {|"thread_name"|});
  check Alcotest.bool "no drop marker when ring held" false
    (contains {|fastsimDroppedEvents|})

let test_export_files () =
  let tr = Fastsim_obs.Trace.create ~capacity:2 () in
  for i = 1 to 5 do
    Fastsim_obs.Trace.emit tr
      (Fastsim_obs.Event.instant ~ts:i ~cat:"memo" "group_replayed")
  done;
  check Alcotest.int "ring dropped" 3 (Fastsim_obs.Trace.dropped tr);
  let tmp = Filename.temp_file "fastsim_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Fastsim_obs.Export.write_jsonl_file tmp tr;
      let ic = open_in tmp in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      (* dropped-marker line + the 2 surviving events *)
      check Alcotest.int "jsonl lines" 3 (List.length !lines);
      check Alcotest.bool "first line is the drop marker" true
        (match List.rev !lines with
         | first :: _ ->
           first = {|{"meta":"dropped","dropped":3}|}
         | [] -> false))

let suite =
  [ Alcotest.test_case "ring basic" `Quick test_ring_basic;
    Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "ring capacity 1" `Quick test_ring_capacity_one;
    Alcotest.test_case "bucket_of edges" `Quick test_bucket_of;
    Alcotest.test_case "histogram observe" `Quick test_histogram_observe;
    Alcotest.test_case "registry find-or-create" `Quick
      test_registry_find_or_create;
    Alcotest.test_case "registry kind mismatch" `Quick
      test_registry_kind_mismatch;
    Alcotest.test_case "profile phases" `Quick test_profile_phases;
    Alcotest.test_case "json printer" `Quick test_json_printer;
    Alcotest.test_case "json \\u escape decoding" `Quick
      test_json_unicode_escapes;
    Alcotest.test_case "chrome export" `Quick test_export_chrome;
    Alcotest.test_case "file export + drop marker" `Quick test_export_files ]
