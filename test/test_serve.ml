(* Fastsim_serve: the persistent daemon. Wire-protocol codecs and
   framing, the warm p-action-cache registry (LRU spill and reload),
   and a live daemon forked per test — bit-identity against direct
   Sim.run over every engine, warm-registry replay on repeat requests,
   concurrent clients, and injected worker faults. *)

module J = Fastsim_obs.Json
module Sim = Fastsim.Sim
module Spec = Fastsim.Sim.Spec
module Proto = Fastsim_serve.Proto
module Registry = Fastsim_serve.Registry
module Server = Fastsim_serve.Server
module Client = Fastsim_serve.Client

let check = Alcotest.check

let workload name =
  let w = Workloads.Suite.find name in
  (w, w.Workloads.Workload.build w.Workloads.Workload.test_scale)

let wref name =
  let w = Workloads.Suite.find name in
  Proto.Workload { name; scale = Some w.Workloads.Workload.test_scale }

(* Direct (no daemon) reference run with the same cold-start the server
   performs: a fresh pcache at the spec's policy for the fast engine. *)
let direct engine spec prog =
  let spec =
    match engine with
    | `Fast -> Spec.with_pcache (Memo.Pcache.create ~policy:spec.Spec.policy ()) spec
    | `Slow | `Baseline -> spec
  in
  Sim.run ~engine spec prog

let result_str r = J.to_string (Sim.result_to_json r)

(* Warm and cold runs agree on everything architectural and on timing;
   the memo/pcache introspection counters necessarily differ (a warm
   run replays more). This is the comparable part. *)
let arch_str r =
  match Sim.result_to_json r with
  | J.Obj fields ->
    J.to_string
      (J.Obj
         (List.filter (fun (k, _) -> k <> "memo" && k <> "pcache") fields))
  | j -> J.to_string j

(* ---------------------------------------------------------------- *)
(* Protocol codecs: every frame type round-trips through its JSON
   encoding, byte-for-byte. *)

let rt_request r =
  let j = Proto.request_to_json r in
  match Proto.request_of_json (J.of_string (J.to_string j)) with
  | Error m -> Alcotest.failf "request decode: %s" m
  | Ok r' ->
    check Alcotest.string "request round-trip" (J.to_string j)
      (J.to_string (Proto.request_to_json r'))

let rt_response r =
  let j = Proto.response_to_json r in
  match Proto.response_of_json (J.of_string (J.to_string j)) with
  | Error m -> Alcotest.failf "response decode: %s" m
  | Ok r' ->
    check Alcotest.string "response round-trip" (J.to_string j)
      (J.to_string (Proto.response_to_json r'))

let test_proto_roundtrip () =
  let spec = Spec.with_predictor Sim.Taken Spec.default in
  List.iter rt_request
    [ Proto.Hello { proto = Proto.version };
      Proto.Run
        { id = "r1"; engine = `Fast; spec; program = wref "li";
          fault = None };
      Proto.Run
        { id = "r2"; engine = `Slow; spec = Spec.default;
          program = Proto.Asm "  halt\n"; fault = Some "crash" };
      Proto.Run
        { id = "r3"; engine = `Baseline; spec = Spec.default;
          program = Proto.By_digest (String.make 32 'a'); fault = None };
      Proto.Stats { id = "s" };
      Proto.Cancel { id = "r1" };
      Proto.Ping { id = "p" };
      Proto.Shutdown { id = "q" } ];
  let _, prog = workload "li" in
  let result = direct `Fast Spec.default prog in
  List.iter rt_response
    [ Proto.R_hello { proto = Proto.version };
      Proto.Accepted { id = "r1" };
      Proto.Result
        { id = "r1"; result; wall_s = 0.125; warm = true;
          digest = String.make 32 'b' };
      Proto.Error
        { id = Some "r1"; code = Proto.Timeout; message = "too slow" };
      Proto.Error { id = None; code = Proto.Bad_request; message = "what" };
      Proto.R_stats { id = "s"; stats = J.Obj [ ("x", J.Int 1) ] };
      Proto.Pong { id = "p" } ]

let test_proto_rejects_junk () =
  let expect_err s =
    match Proto.request_of_json (J.of_string s) with
    | Ok _ -> Alcotest.failf "accepted %s" s
    | Error _ -> ()
  in
  expect_err {|{"type":"warp"}|};
  expect_err {|{"type":"ping"}|} (* missing id *);
  expect_err {|{"type":"ping","id":"a","volume":11}|};
  (* duplicate keys are an error, not last-wins *)
  expect_err {|{"type":"ping","id":"a","id":"b"}|};
  match
    Proto.response_of_json (J.of_string {|{"type":"error","code":"nope","message":"m"}|})
  with
  | Ok _ -> Alcotest.fail "accepted bad error code"
  | Error _ -> ()

(* The incremental decoder reassembles frames from arbitrarily ragged
   chunks — here, one byte at a time — and preserves order. *)
let test_decoder_reassembly () =
  let frames =
    [ Proto.request_to_json (Proto.Ping { id = "a" });
      Proto.request_to_json (Proto.Stats { id = "b" });
      Proto.request_to_json (Proto.Shutdown { id = "c" }) ]
  in
  let wire = Buffer.create 256 in
  List.iter (fun j -> Buffer.add_bytes wire (Proto.encode_frame j)) frames;
  let d = Proto.Decoder.create () in
  let got = ref [] in
  String.iter
    (fun ch ->
      Proto.Decoder.feed d (Bytes.make 1 ch) 1;
      match Proto.Decoder.next d with
      | Ok (Some j) -> got := j :: !got
      | Ok None -> ()
      | Error m -> Alcotest.failf "decoder: %s" m)
    (Buffer.contents wire);
  check (Alcotest.list Alcotest.string) "frames in order"
    (List.map J.to_string frames)
    (List.rev_map J.to_string !got)

let test_decoder_oversize () =
  let d = Proto.Decoder.create () in
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 '\x7f';
  Bytes.set hdr 1 '\xff';
  Bytes.set hdr 2 '\xff';
  Bytes.set hdr 3 '\xff';
  Proto.Decoder.feed d hdr 4;
  match Proto.Decoder.next d with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized frame accepted"

let test_address_parse () =
  let ok s a =
    match Proto.address_of_string s with
    | Ok a' -> check Alcotest.string s (Proto.address_to_string a)
                 (Proto.address_to_string a')
    | Error m -> Alcotest.failf "%s: %s" s m
  in
  ok "unix:/tmp/x.sock" (`Unix_path "/tmp/x.sock");
  ok "/tmp/x.sock" (`Unix_path "/tmp/x.sock");
  ok "tcp:localhost:7000" (`Tcp ("localhost", 7000));
  match Proto.address_of_string "tcp:nope" with
  | Ok _ -> Alcotest.fail "bad tcp address accepted"
  | Error _ -> ()

(* ---------------------------------------------------------------- *)
(* Registry: LRU spill under a byte budget, reload on re-acquire, and
   the reloaded cache actually replays. *)

let test_registry_lru () =
  Fastsim_exec.Pool.with_temp_dir ~prefix:"fastsim-reg" (fun dir ->
      let _, prog = workload "li" in
      let digest = Digest.to_hex (Memo.Persist.program_digest prog) in
      let spec1 = Spec.default in
      let spec2 = Spec.with_predictor Sim.Taken Spec.default in
      let run spec pc = Sim.run ~engine:`Fast (Spec.with_pcache pc spec) prog in
      (* size one warm cache so the budget fits exactly one of the two *)
      let probe = Memo.Pcache.create () in
      let cold1 = run spec1 probe in
      let bytes = (Memo.Pcache.counters probe).Memo.Pcache.modeled_bytes in
      Alcotest.(check bool) "probe cache is non-trivial" true (bytes > 0);
      let reg =
        Registry.create ~dir:(Filename.concat dir "reg")
          ~budget_bytes:(bytes + (bytes / 2))
          ~program_of:(fun d -> if d = digest then Some prog else None)
          ()
      in
      let key1 = Registry.spec_key spec1
      and key2 = Registry.spec_key spec2 in
      let warm_run spec key =
        let pc =
          match
            Registry.acquire reg ~digest ~spec_key:key
              ~policy:Memo.Pcache.Unbounded ~program:prog
          with
          | Some pc -> pc
          | None -> Memo.Pcache.create ()
        in
        let r = run spec pc in
        Registry.commit_mem reg ~digest ~spec_key:key pc;
        r
      in
      let r1 = warm_run spec1 key1 in
      check Alcotest.string "registry run matches direct" (result_str cold1)
        (result_str r1);
      ignore (warm_run spec2 key2 : Sim.result);
      (* two hot entries exceed the budget: the LRU one (spec1) was
         spilled to disk and dropped from memory *)
      check Alcotest.int "both entries present" 2 (Registry.entry_count reg);
      check Alcotest.int "one survives hot" 1 (Registry.hot_count reg);
      check Alcotest.int "the loser was spilled, not discarded" 1
        (Registry.spills reg);
      (* re-acquiring the spilled entry reloads it from its file... *)
      let r1' = warm_run spec1 key1 in
      check Alcotest.int "reload happened" 1 (Registry.reloads reg);
      check Alcotest.string "reloaded result identical" (arch_str cold1)
        (arch_str r1');
      (* ...and the reloaded cache replays rather than re-simulating *)
      (match r1'.Sim.memo with
       | Some m ->
         Alcotest.(check bool) "warm reload replays" true
           (m.Memo.Stats.replayed_retired > 0)
       | None -> Alcotest.fail "fast run without memo stats"))

(* ---------------------------------------------------------------- *)
(* Live daemon tests: fork a server per test, talk to it over its
   socket, reap it afterwards. *)

let with_server ?(backend = `Inline) ?(jobs = 2) ?(timeout_s = 0.)
    ?registry_budget ?(allow_fault = false) f =
  Fastsim_exec.Pool.with_temp_dir ~prefix:"fastsim-serve" (fun dir ->
      let sock = Filename.concat dir "d.sock" in
      let cfg =
        { (Server.default_config (`Unix_path sock)) with
          Server.backend; jobs; timeout_s; registry_budget; allow_fault;
          scratch_dir = Some (Filename.concat dir "scratch");
          quiet = true }
      in
      flush stdout;
      flush stderr;
      match Unix.fork () with
      | 0 ->
        (try
           Server.run cfg;
           Unix._exit 0
         with _ -> Unix._exit 1)
      | pid ->
        let finish () =
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          let rec reap tries =
            match Unix.waitpid [ Unix.WNOHANG ] pid with
            | 0, _ when tries > 0 ->
              Unix.sleepf 0.05;
              reap (tries - 1)
            | 0, _ ->
              Unix.kill pid Sys.sigkill;
              ignore (Unix.waitpid [] pid)
            | _ -> ()
          in
          reap 200
        in
        Fun.protect ~finally:finish (fun () ->
            match
              Client.connect ~retries:100 ~retry_delay_s:0.05
                (`Unix_path sock)
            with
            | Error m -> Alcotest.failf "connect: %s" m
            | Ok c ->
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () -> f (`Unix_path sock) c)))

let run_ok c ~id ~engine ?fault program =
  match Client.run c ~id ~engine ~spec:Spec.default ?fault program with
  | Error m -> Alcotest.failf "run %s: %s" id m
  | Ok (Proto.Result _ as r) -> r
  | Ok (Proto.Error { code; message; _ }) ->
    Alcotest.failf "run %s: server error [%s] %s" id
      (Proto.error_code_to_string code)
      message
  | Ok _ -> Alcotest.failf "run %s: unexpected frame" id

(* The paper's claim, through the wire: for every engine, a daemon
   response is bit-identical to a direct Sim.run of the same spec. *)
let test_daemon_bit_identity () =
  with_server ~backend:`Inline (fun _ c ->
      let _, prog = workload "li" in
      List.iter
        (fun engine ->
          let expect = result_str (direct engine Spec.default prog) in
          match run_ok c ~id:"bit" ~engine (wref "li") with
          | Proto.Result { result; _ } ->
            check Alcotest.string "daemon = direct" expect
              (result_str result)
          | _ -> assert false)
        [ `Fast; `Slow; `Baseline ])

(* A repeated fast request is served from the warm registry: the result
   is still bit-identical, the frame says warm, the memo stats show
   replay, and the stats frame shows the registry hit. *)
let test_daemon_warm_repeat () =
  with_server ~backend:`Inline (fun _ c ->
      let first = run_ok c ~id:"a" ~engine:`Fast (wref "li") in
      let second = run_ok c ~id:"b" ~engine:`Fast (wref "li") in
      (match (first, second) with
       | ( Proto.Result { result = r1; warm = w1; _ },
           Proto.Result { result = r2; warm = w2; _ } ) ->
         Alcotest.(check bool) "first is cold" false w1;
         Alcotest.(check bool) "second is warm" true w2;
         check Alcotest.string "warm result identical" (arch_str r1)
           (arch_str r2);
         (match r2.Sim.memo with
          | Some m ->
            Alcotest.(check bool) "replay fraction > 0" true
              (m.Memo.Stats.replayed_retired > 0)
          | None -> Alcotest.fail "no memo stats")
       | _ -> assert false);
      match Client.stats c ~id:"s" with
      | Error m -> Alcotest.failf "stats: %s" m
      | Ok j -> (
        match j with
        | J.Obj fields -> (
          match List.assoc_opt "registry" fields with
          | Some (J.Obj reg) ->
            (match List.assoc_opt "hits" reg with
             | Some (J.Int h) ->
               Alcotest.(check bool) "registry hit counted" true (h >= 1)
             | _ -> Alcotest.fail "stats.registry.hits missing")
          | _ -> Alcotest.fail "stats.registry missing")
        | _ -> Alcotest.fail "stats frame is not an object"))

(* By_digest: re-run a program the server already built without
   re-naming it; unknown digests are a clean error. *)
let test_daemon_by_digest () =
  with_server ~backend:`Inline (fun _ c ->
      let d =
        match run_ok c ~id:"a" ~engine:`Fast (wref "li") with
        | Proto.Result { digest; _ } -> digest
        | _ -> assert false
      in
      (match run_ok c ~id:"b" ~engine:`Fast (Proto.By_digest d) with
       | Proto.Result { warm; _ } ->
         Alcotest.(check bool) "digest re-run is warm" true warm
       | _ -> assert false);
      match
        Client.run c ~id:"c" ~engine:`Fast ~spec:Spec.default
          (Proto.By_digest (String.make 32 '0'))
      with
      | Ok (Proto.Error { code = Proto.Unknown_digest; _ }) -> ()
      | Ok _ -> Alcotest.fail "unknown digest not rejected"
      | Error m -> Alcotest.failf "unknown digest: %s" m)

let test_daemon_unknown_workload () =
  with_server ~backend:`Inline (fun _ c ->
      match
        Client.run c ~id:"x" ~engine:`Fast ~spec:Spec.default
          (Proto.Workload { name = "190.vaporware"; scale = None })
      with
      | Ok (Proto.Error { code = Proto.Unknown_workload; _ }) -> ()
      | Ok _ -> Alcotest.fail "unknown workload not rejected"
      | Error m -> Alcotest.failf "unexpected transport error: %s" m)

(* Concurrent clients against the fork backend: submissions overlap on
   the server; every response still matches a direct run. *)
let test_daemon_concurrent_clients () =
  with_server ~backend:`Fork ~jobs:2 (fun addr c0 ->
      let names = [ "li"; "compress"; "li" ] in
      let conns =
        c0
        :: List.map
             (fun _ ->
               match Client.connect ~retries:20 addr with
               | Ok c -> c
               | Error m -> Alcotest.failf "connect: %s" m)
             (List.tl names)
      in
      Fun.protect
        ~finally:(fun () -> List.iter Client.close (List.tl conns))
        (fun () ->
          (* fire all requests before reading any response *)
          List.iteri
            (fun i (c, name) ->
              match
                Client.send c
                  (Proto.Run
                     { id = Printf.sprintf "c%d" i; engine = `Fast;
                       spec = Spec.default; program = wref name;
                       fault = None })
              with
              | Ok () -> ()
              | Error m -> Alcotest.failf "send: %s" m)
            (List.combine conns names);
          List.iteri
            (fun i (c, name) ->
              let _, prog = workload name in
              (* a duplicate workload may be served warm once the first
                 finishes, so compare the warm-invariant part *)
              let expect = arch_str (direct `Fast Spec.default prog) in
              let rec await () =
                match Client.recv c with
                | Error m -> Alcotest.failf "recv: %s" m
                | Ok (Proto.Accepted _) -> await ()
                | Ok (Proto.Result { result; _ }) ->
                  check Alcotest.string
                    (Printf.sprintf "client %d (%s) = direct" i name)
                    expect (arch_str result)
                | Ok (Proto.Error { message; _ }) ->
                  Alcotest.failf "client %d: %s" i message
                | Ok _ -> Alcotest.failf "client %d: unexpected frame" i
              in
              await ())
            (List.combine conns names)))

(* An injected worker crash surfaces as a worker_crashed error frame —
   and the daemon survives to serve the next request. *)
let test_daemon_worker_crash () =
  with_server ~backend:`Fork ~allow_fault:true (fun _ c ->
      (match
         Client.run c ~id:"boom" ~engine:`Fast ~spec:Spec.default
           ~fault:"crash" (wref "li")
       with
       | Ok (Proto.Error { code = Proto.Worker_crashed; _ }) -> ()
       | Ok _ -> Alcotest.fail "crash did not produce worker_crashed"
       | Error m -> Alcotest.failf "crash request: %s" m);
      match run_ok c ~id:"after" ~engine:`Fast (wref "li") with
      | Proto.Result _ -> ()
      | _ -> assert false)

(* A hung worker is killed at the timeout and answered with an error. *)
let test_daemon_timeout () =
  with_server ~backend:`Fork ~allow_fault:true ~timeout_s:0.3 (fun _ c ->
      match
        Client.run c ~id:"hang" ~engine:`Fast ~spec:Spec.default
          ~fault:"hang" (wref "li")
      with
      | Ok (Proto.Error { code = Proto.Timeout; _ }) -> ()
      | Ok _ -> Alcotest.fail "hang did not time out"
      | Error m -> Alcotest.failf "hang request: %s" m)

(* Faults are refused unless the server opted in. *)
let test_daemon_fault_gate () =
  with_server ~backend:`Inline (fun _ c ->
      match
        Client.run c ~id:"x" ~engine:`Fast ~spec:Spec.default
          ~fault:"crash" (wref "li")
      with
      | Ok (Proto.Error { code = Proto.Bad_request; _ }) -> ()
      | Ok _ -> Alcotest.fail "fault accepted without allow_fault"
      | Error m -> Alcotest.failf "unexpected transport error: %s" m)

let suite =
  [ Alcotest.test_case "protocol frames round-trip" `Quick
      test_proto_roundtrip;
    Alcotest.test_case "protocol rejects malformed frames" `Quick
      test_proto_rejects_junk;
    Alcotest.test_case "decoder reassembles ragged chunks" `Quick
      test_decoder_reassembly;
    Alcotest.test_case "decoder rejects oversized frames" `Quick
      test_decoder_oversize;
    Alcotest.test_case "address strings parse" `Quick test_address_parse;
    Alcotest.test_case "registry LRU spill and reload" `Quick
      test_registry_lru;
    Alcotest.test_case "daemon matches direct run on every engine" `Quick
      test_daemon_bit_identity;
    Alcotest.test_case "repeat request is served warm" `Quick
      test_daemon_warm_repeat;
    Alcotest.test_case "by-digest re-run" `Quick test_daemon_by_digest;
    Alcotest.test_case "unknown workload is a clean error" `Quick
      test_daemon_unknown_workload;
    Alcotest.test_case "concurrent clients, fork backend" `Quick
      test_daemon_concurrent_clients;
    Alcotest.test_case "worker crash becomes an error frame" `Quick
      test_daemon_worker_crash;
    Alcotest.test_case "hung worker is timed out" `Quick
      test_daemon_timeout;
    Alcotest.test_case "fault injection is gated" `Quick
      test_daemon_fault_gate ]
