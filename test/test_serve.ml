(* Fastsim_serve: the persistent daemon. Wire-protocol codecs and
   framing, the warm p-action-cache registry (LRU spill and reload),
   and a live daemon forked per test — bit-identity against direct
   Sim.run over every engine, warm-registry replay on repeat requests,
   concurrent clients, and injected worker faults. *)

module J = Fastsim_obs.Json
module Sim = Fastsim.Sim
module Spec = Fastsim.Sim.Spec
module Proto = Fastsim_serve.Proto
module Registry = Fastsim_serve.Registry
module Server = Fastsim_serve.Server
module Client = Fastsim_serve.Client

let check = Alcotest.check

let workload name =
  let w = Workloads.Suite.find name in
  (w, w.Workloads.Workload.build w.Workloads.Workload.test_scale)

let wref name =
  let w = Workloads.Suite.find name in
  Proto.Workload { name; scale = Some w.Workloads.Workload.test_scale }

(* Direct (no daemon) reference run with the same cold-start the server
   performs: a fresh pcache at the spec's policy for the fast engine. *)
let direct engine spec prog =
  let spec =
    match engine with
    | `Fast -> Spec.with_pcache (Memo.Pcache.create ~policy:spec.Spec.policy ()) spec
    | `Slow | `Baseline -> spec
  in
  Sim.run ~engine spec prog

let result_str r = J.to_string (Sim.result_to_json r)

(* Warm and cold runs agree on everything architectural and on timing;
   the memo/pcache introspection counters necessarily differ (a warm
   run replays more). This is the comparable part. *)
let arch_str r =
  match Sim.result_to_json r with
  | J.Obj fields ->
    J.to_string
      (J.Obj
         (List.filter (fun (k, _) -> k <> "memo" && k <> "pcache") fields))
  | j -> J.to_string j

(* ---------------------------------------------------------------- *)
(* Protocol codecs: every frame type round-trips through its JSON
   encoding, byte-for-byte. *)

let rt_request r =
  let j = Proto.request_to_json r in
  match Proto.request_of_json (J.of_string (J.to_string j)) with
  | Error m -> Alcotest.failf "request decode: %s" m
  | Ok r' ->
    check Alcotest.string "request round-trip" (J.to_string j)
      (J.to_string (Proto.request_to_json r'))

let rt_response r =
  let j = Proto.response_to_json r in
  match Proto.response_of_json (J.of_string (J.to_string j)) with
  | Error m -> Alcotest.failf "response decode: %s" m
  | Ok r' ->
    check Alcotest.string "response round-trip" (J.to_string j)
      (J.to_string (Proto.response_to_json r'))

let test_proto_roundtrip () =
  let spec = Spec.with_predictor Sim.Taken Spec.default in
  List.iter rt_request
    [ Proto.Hello { proto = Proto.version };
      Proto.Run
        { id = "r1"; engine = `Fast; spec; program = wref "li";
          fault = None };
      Proto.Run
        { id = "r2"; engine = `Slow; spec = Spec.default;
          program = Proto.Asm "  halt\n"; fault = Some "crash" };
      Proto.Run
        { id = "r3"; engine = `Baseline; spec = Spec.default;
          program = Proto.By_digest (String.make 32 'a'); fault = None };
      Proto.Stats { id = "s" };
      Proto.Telemetry { id = "t"; include_trace = false };
      Proto.Telemetry { id = "t2"; include_trace = true };
      Proto.Cancel { id = "r1" };
      Proto.Ping { id = "p" };
      Proto.Shutdown { id = "q" } ];
  let _, prog = workload "li" in
  let result = direct `Fast Spec.default prog in
  List.iter rt_response
    [ Proto.R_hello { proto = Proto.version };
      Proto.Accepted { id = "r1" };
      Proto.Result
        { id = "r1"; result; wall_s = 0.125; warm = true;
          digest = String.make 32 'b' };
      Proto.Error
        { id = Some "r1"; code = Proto.Timeout; message = "too slow" };
      Proto.Error { id = None; code = Proto.Bad_request; message = "what" };
      Proto.R_stats { id = "s"; stats = J.Obj [ ("x", J.Int 1) ] };
      Proto.R_telemetry
        { id = "t";
          telemetry =
            J.Obj [ ("at", J.Float 1.5); ("metrics", J.Obj []) ] };
      Proto.Pong { id = "p" } ]

let test_proto_rejects_junk () =
  let expect_err s =
    match Proto.request_of_json (J.of_string s) with
    | Ok _ -> Alcotest.failf "accepted %s" s
    | Error _ -> ()
  in
  expect_err {|{"type":"warp"}|};
  expect_err {|{"type":"ping"}|} (* missing id *);
  expect_err {|{"type":"ping","id":"a","volume":11}|};
  (* duplicate keys are an error, not last-wins *)
  expect_err {|{"type":"ping","id":"a","id":"b"}|};
  expect_err {|{"type":"telemetry"}|} (* missing id *);
  expect_err {|{"type":"telemetry","id":"a","trace":"yes"}|};
  expect_err {|{"type":"telemetry","id":"a","verbose":true}|};
  match
    Proto.response_of_json (J.of_string {|{"type":"error","code":"nope","message":"m"}|})
  with
  | Ok _ -> Alcotest.fail "accepted bad error code"
  | Error _ -> ()

(* The incremental decoder reassembles frames from arbitrarily ragged
   chunks — here, one byte at a time — and preserves order. *)
let test_decoder_reassembly () =
  let frames =
    [ Proto.request_to_json (Proto.Ping { id = "a" });
      Proto.request_to_json (Proto.Stats { id = "b" });
      Proto.request_to_json (Proto.Shutdown { id = "c" }) ]
  in
  let wire = Buffer.create 256 in
  List.iter (fun j -> Buffer.add_bytes wire (Proto.encode_frame j)) frames;
  let d = Proto.Decoder.create () in
  let got = ref [] in
  String.iter
    (fun ch ->
      Proto.Decoder.feed d (Bytes.make 1 ch) 1;
      match Proto.Decoder.next d with
      | Ok (Some j) -> got := j :: !got
      | Ok None -> ()
      | Error m -> Alcotest.failf "decoder: %s" m)
    (Buffer.contents wire);
  check (Alcotest.list Alcotest.string) "frames in order"
    (List.map J.to_string frames)
    (List.rev_map J.to_string !got)

let test_decoder_oversize () =
  let d = Proto.Decoder.create () in
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 '\x7f';
  Bytes.set hdr 1 '\xff';
  Bytes.set hdr 2 '\xff';
  Bytes.set hdr 3 '\xff';
  Proto.Decoder.feed d hdr 4;
  match Proto.Decoder.next d with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized frame accepted"

let test_address_parse () =
  let ok s a =
    match Proto.address_of_string s with
    | Ok a' -> check Alcotest.string s (Proto.address_to_string a)
                 (Proto.address_to_string a')
    | Error m -> Alcotest.failf "%s: %s" s m
  in
  ok "unix:/tmp/x.sock" (`Unix_path "/tmp/x.sock");
  ok "/tmp/x.sock" (`Unix_path "/tmp/x.sock");
  ok "tcp:localhost:7000" (`Tcp ("localhost", 7000));
  match Proto.address_of_string "tcp:nope" with
  | Ok _ -> Alcotest.fail "bad tcp address accepted"
  | Error _ -> ()

(* ---------------------------------------------------------------- *)
(* Registry: LRU spill under a byte budget, reload on re-acquire, and
   the reloaded cache actually replays. *)

let test_registry_lru () =
  Fastsim_exec.Pool.with_temp_dir ~prefix:"fastsim-reg" (fun dir ->
      let _, prog = workload "li" in
      let digest = Digest.to_hex (Memo.Persist.program_digest prog) in
      let spec1 = Spec.default in
      let spec2 = Spec.with_predictor Sim.Taken Spec.default in
      let run spec pc = Sim.run ~engine:`Fast (Spec.with_pcache pc spec) prog in
      (* size one warm cache so the budget fits exactly one of the two *)
      let probe = Memo.Pcache.create () in
      let cold1 = run spec1 probe in
      let bytes = (Memo.Pcache.counters probe).Memo.Pcache.modeled_bytes in
      Alcotest.(check bool) "probe cache is non-trivial" true (bytes > 0);
      let reg =
        Registry.create ~dir:(Filename.concat dir "reg")
          ~budget_bytes:(bytes + (bytes / 2))
          ~program_of:(fun d -> if d = digest then Some prog else None)
          ()
      in
      let key1 = Registry.spec_key spec1
      and key2 = Registry.spec_key spec2 in
      let warm_run spec key =
        let pc =
          match
            Registry.acquire reg ~digest ~spec_key:key
              ~policy:Memo.Pcache.Unbounded ~program:prog
          with
          | Some pc -> pc
          | None -> Memo.Pcache.create ()
        in
        let r = run spec pc in
        Registry.commit_mem reg ~digest ~spec_key:key pc;
        r
      in
      let r1 = warm_run spec1 key1 in
      check Alcotest.string "registry run matches direct" (result_str cold1)
        (result_str r1);
      ignore (warm_run spec2 key2 : Sim.result);
      (* two hot entries exceed the budget: the LRU one (spec1) was
         spilled to disk and dropped from memory *)
      check Alcotest.int "both entries present" 2 (Registry.entry_count reg);
      check Alcotest.int "one survives hot" 1 (Registry.hot_count reg);
      check Alcotest.int "the loser was spilled, not discarded" 1
        (Registry.spills reg);
      (* re-acquiring the spilled entry reloads it from its file... *)
      let r1' = warm_run spec1 key1 in
      check Alcotest.int "reload happened" 1 (Registry.reloads reg);
      check Alcotest.string "reloaded result identical" (arch_str cold1)
        (arch_str r1');
      (* ...and the reloaded cache replays rather than re-simulating *)
      (match r1'.Sim.memo with
       | Some m ->
         Alcotest.(check bool) "warm reload replays" true
           (m.Memo.Stats.replayed_retired > 0)
       | None -> Alcotest.fail "fast run without memo stats"))

(* The registry's telemetry instruments: under a starvation budget
   every commit spills its entry to disk and evicts it from memory,
   and the shared metrics registry sees each transition — counters for
   hit/miss/spill/evict/reload traffic, gauges tracking the hot and
   spilled footprint byte-for-byte. *)
let test_registry_eviction_telemetry () =
  let module M = Fastsim_obs.Metrics in
  Fastsim_exec.Pool.with_temp_dir ~prefix:"fastsim-regtel" (fun dir ->
      let _, prog = workload "li" in
      let digest = Digest.to_hex (Memo.Persist.program_digest prog) in
      let pc = Memo.Pcache.create () in
      ignore (Sim.run ~engine:`Fast (Spec.with_pcache pc Spec.default) prog
              : Sim.result);
      let metrics = M.create () in
      let counter n = M.counter_value (M.counter metrics n) in
      let gauge n = M.gauge_value (M.gauge metrics n) in
      let reg =
        Registry.create ~dir:(Filename.concat dir "reg") ~budget_bytes:1
          ~program_of:(fun d -> if d = digest then Some prog else None)
          ~metrics ()
      in
      let key1 = Registry.spec_key Spec.default in
      let key2 =
        Registry.spec_key (Spec.with_predictor Sim.Taken Spec.default)
      in
      (match
         Registry.acquire reg ~digest ~spec_key:key1
           ~policy:Memo.Pcache.Unbounded ~program:prog
       with
       | Some _ -> Alcotest.fail "empty registry returned a cache"
       | None -> ());
      check Alcotest.int "miss counted" 1 (counter "registry.misses");
      (* the freshest commit is always kept hot, so the first commit
         survives even a 1-byte budget... *)
      Registry.commit_mem reg ~digest ~spec_key:key1 pc;
      check Alcotest.int "lone entry not spilled" 0
        (counter "registry.spills");
      Alcotest.(check bool) "hot gauge tracks the commit" true
        (gauge "registry.hot_bytes" > 0.);
      (* ...and the second commit forces the first out: spilled to a
         file, evicted from memory, every gauge adjusted *)
      Registry.commit_mem reg ~digest ~spec_key:key2 pc;
      check Alcotest.int "spill counted" 1 (counter "registry.spills");
      check Alcotest.int "eviction counted" 1 (counter "registry.evictions");
      check (Alcotest.float 0.) "one entry still hot" 1.
        (gauge "registry.hot_entries");
      check (Alcotest.float 0.) "both entries tracked" 2.
        (gauge "registry.entries");
      check (Alcotest.float 0.) "hot gauge = hot bytes"
        (float_of_int (Registry.hot_bytes reg))
        (gauge "registry.hot_bytes");
      check (Alcotest.float 0.) "spilled gauge tracks the file"
        (float_of_int (Registry.spilled_bytes reg))
        (gauge "registry.spilled_bytes");
      Alcotest.(check bool) "spilled bytes non-trivial" true
        (Registry.spilled_bytes reg > 0);
      (* re-acquire the spilled entry: a hit that reloads from disk —
         and evicts the other entry in turn *)
      (match
         Registry.acquire reg ~digest ~spec_key:key1
           ~policy:Memo.Pcache.Unbounded ~program:prog
       with
       | Some _ -> ()
       | None -> Alcotest.fail "spilled entry did not reload");
      check Alcotest.int "hit counted" 1 (counter "registry.hits");
      check Alcotest.int "reload counted" 1 (counter "registry.reloads");
      check Alcotest.int "displaced sibling evicted" 2
        (counter "registry.evictions");
      (* per-digest traffic counters exist under the digest's prefix *)
      let short = String.sub digest 0 12 in
      check Alcotest.int "per-digest miss" 1
        (counter (Printf.sprintf "registry.digest.%s.misses" short));
      check Alcotest.int "per-digest hit" 1
        (counter (Printf.sprintf "registry.digest.%s.hits" short));
      (* counters agree with the registry's own accounting *)
      check Alcotest.int "spills accessor agrees" (Registry.spills reg)
        (counter "registry.spills");
      check Alcotest.int "evictions accessor agrees"
        (Registry.evictions reg)
        (counter "registry.evictions"))

(* One shared chain store per program digest: two specs of the same
   program committed through the registry bind the same store, their
   grammar-compressed chains dedup against each other, and the serve
   stats expose refcount > 1 — the cross-spec-sharing proof named in
   docs/SERVE.md. *)
let test_registry_shared_chain_store () =
  Fastsim_exec.Pool.with_temp_dir ~prefix:"fastsim-regshare" (fun dir ->
      let _, prog = workload "compress" in
      let digest = Digest.to_hex (Memo.Persist.program_digest prog) in
      let spec1 = Spec.default in
      let spec2 = Spec.with_predictor Sim.Taken Spec.default in
      (* baseline: the same two runs with private stores *)
      let private_rules spec =
        let store = Memo.Store.create () in
        let pc = Memo.Pcache.create ~store () in
        ignore (Sim.run ~engine:`Fast (Spec.with_pcache pc spec) prog
                : Sim.result);
        Memo.Store.live_rules store
      in
      let solo = private_rules spec1 + private_rules spec2 in
      let reg = Registry.create ~dir:(Filename.concat dir "reg") () in
      let commit spec =
        let key = Registry.spec_key spec in
        let pc =
          Memo.Pcache.create ~store:(Registry.chain_store reg ~digest) ()
        in
        ignore (Sim.run ~engine:`Fast (Spec.with_pcache pc spec) prog
                : Sim.result);
        Registry.commit_mem reg ~digest ~spec_key:key pc
      in
      commit spec1;
      commit spec2;
      check Alcotest.int "one store for the digest" 1
        (Registry.store_count reg);
      check Alcotest.int "both entries bound to it" 2
        (Registry.store_refs_for reg ~digest);
      Alcotest.(check bool) "shared chains stored once" true
        (Registry.store_rules reg < solo);
      Alcotest.(check bool) "store bytes counted once per digest" true
        (Registry.store_bytes reg > 0);
      (* the stats frame carries the same evidence *)
      match Registry.stats_json reg with
      | J.Obj fields ->
        check Alcotest.bool "stats expose store_refs > 1" true
          (match List.assoc_opt "store_refs" fields with
           | Some (J.Int n) -> n > 1
           | _ -> false)
      | _ -> Alcotest.fail "stats_json is not an object")

(* Regression: the per-digest spilled_bytes gauge used to be bumped on
   every spill, so a spill -> reload -> re-spill cycle (routine under a
   tight budget, where the file on disk is already up to date) counted
   the same file again each lap. The gauge is now recounted from live
   entries; after any number of laps it must equal the registry's own
   on-disk accounting exactly. *)
let test_registry_spilled_bytes_not_double_counted () =
  let module M = Fastsim_obs.Metrics in
  Fastsim_exec.Pool.with_temp_dir ~prefix:"fastsim-regspill" (fun dir ->
      let _, prog = workload "li" in
      let digest = Digest.to_hex (Memo.Persist.program_digest prog) in
      let metrics = M.create () in
      let gauge n = M.gauge_value (M.gauge metrics n) in
      let reg =
        Registry.create ~dir:(Filename.concat dir "reg") ~budget_bytes:1
          ~program_of:(fun d -> if d = digest then Some prog else None)
          ~metrics ()
      in
      let spec2 = Spec.with_predictor Sim.Taken Spec.default in
      let commit spec =
        let key = Registry.spec_key spec in
        let pc =
          Memo.Pcache.create ~store:(Registry.chain_store reg ~digest) ()
        in
        ignore (Sim.run ~engine:`Fast (Spec.with_pcache pc spec) prog
                : Sim.result);
        Registry.commit_mem reg ~digest ~spec_key:key pc
      in
      commit Spec.default;
      commit spec2;
      let spilled_gauge =
        Printf.sprintf "registry.digest.%s.spilled_bytes"
          (String.sub digest 0 12)
      in
      Alcotest.(check bool) "first spill recorded" true
        (gauge spilled_gauge > 0.);
      (* bounce both entries between disk and memory: each acquire
         reloads one entry and re-spills the other against a file that
         is already up to date *)
      for _ = 1 to 3 do
        List.iter
          (fun spec ->
            match
              Registry.acquire reg ~digest
                ~spec_key:(Registry.spec_key spec)
                ~policy:Memo.Pcache.Unbounded ~program:prog
            with
            | Some _ -> ()
            | None -> Alcotest.fail "spilled entry did not reload")
          [ Spec.default; spec2 ]
      done;
      Alcotest.(check bool) "cycles actually spilled" true
        (Registry.spills reg >= 2);
      check (Alcotest.float 0.) "per-digest gauge = live file bytes"
        (float_of_int (Registry.spilled_bytes reg))
        (gauge spilled_gauge);
      check (Alcotest.float 0.) "global gauge agrees"
        (gauge "registry.spilled_bytes")
        (gauge spilled_gauge))

(* ---------------------------------------------------------------- *)
(* Live daemon tests: fork a server per test, talk to it over its
   socket, reap it afterwards. [tweak] lets a test adjust the config
   (and learn the temp dir) before the daemon forks — used by the
   observability acceptance test to enable logging and trace dumps. *)

let with_server ?(backend = `Inline) ?(jobs = 2) ?(timeout_s = 0.)
    ?registry_budget ?(allow_fault = false)
    ?(tweak = fun cfg (_ : string) -> cfg) f =
  Fastsim_exec.Pool.with_temp_dir ~prefix:"fastsim-serve" (fun dir ->
      let sock = Filename.concat dir "d.sock" in
      let cfg =
        tweak
          { (Server.default_config (`Unix_path sock)) with
            Server.backend; jobs; timeout_s; registry_budget; allow_fault;
            scratch_dir = Some (Filename.concat dir "scratch");
            quiet = true }
          dir
      in
      flush stdout;
      flush stderr;
      match Unix.fork () with
      | 0 ->
        (try
           Server.run cfg;
           Unix._exit 0
         with _ -> Unix._exit 1)
      | pid ->
        let finish () =
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          let rec reap tries =
            match Unix.waitpid [ Unix.WNOHANG ] pid with
            | 0, _ when tries > 0 ->
              Unix.sleepf 0.05;
              reap (tries - 1)
            | 0, _ ->
              Unix.kill pid Sys.sigkill;
              ignore (Unix.waitpid [] pid)
            | _ -> ()
          in
          reap 200
        in
        Fun.protect ~finally:finish (fun () ->
            match
              Client.connect ~retries:100 ~retry_delay_s:0.05
                (`Unix_path sock)
            with
            | Error m -> Alcotest.failf "connect: %s" m
            | Ok c ->
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () -> f (`Unix_path sock) c)))

let run_ok c ~id ~engine ?fault program =
  match Client.run c ~id ~engine ~spec:Spec.default ?fault program with
  | Error m -> Alcotest.failf "run %s: %s" id m
  | Ok (Proto.Result _ as r) -> r
  | Ok (Proto.Error { code; message; _ }) ->
    Alcotest.failf "run %s: server error [%s] %s" id
      (Proto.error_code_to_string code)
      message
  | Ok _ -> Alcotest.failf "run %s: unexpected frame" id

(* The paper's claim, through the wire: for every engine, a daemon
   response is bit-identical to a direct Sim.run of the same spec. *)
let test_daemon_bit_identity () =
  with_server ~backend:`Inline (fun _ c ->
      let _, prog = workload "li" in
      List.iter
        (fun engine ->
          let expect = result_str (direct engine Spec.default prog) in
          match run_ok c ~id:"bit" ~engine (wref "li") with
          | Proto.Result { result; _ } ->
            check Alcotest.string "daemon = direct" expect
              (result_str result)
          | _ -> assert false)
        [ `Fast; `Slow; `Baseline ])

(* A repeated fast request is served from the warm registry: the result
   is still bit-identical, the frame says warm, the memo stats show
   replay, and the stats frame shows the registry hit. *)
let test_daemon_warm_repeat () =
  with_server ~backend:`Inline (fun _ c ->
      let first = run_ok c ~id:"a" ~engine:`Fast (wref "li") in
      let second = run_ok c ~id:"b" ~engine:`Fast (wref "li") in
      (match (first, second) with
       | ( Proto.Result { result = r1; warm = w1; _ },
           Proto.Result { result = r2; warm = w2; _ } ) ->
         Alcotest.(check bool) "first is cold" false w1;
         Alcotest.(check bool) "second is warm" true w2;
         check Alcotest.string "warm result identical" (arch_str r1)
           (arch_str r2);
         (match r2.Sim.memo with
          | Some m ->
            Alcotest.(check bool) "replay fraction > 0" true
              (m.Memo.Stats.replayed_retired > 0)
          | None -> Alcotest.fail "no memo stats")
       | _ -> assert false);
      match Client.stats c ~id:"s" with
      | Error m -> Alcotest.failf "stats: %s" m
      | Ok j -> (
        match j with
        | J.Obj fields -> (
          match List.assoc_opt "registry" fields with
          | Some (J.Obj reg) ->
            (match List.assoc_opt "hits" reg with
             | Some (J.Int h) ->
               Alcotest.(check bool) "registry hit counted" true (h >= 1)
             | _ -> Alcotest.fail "stats.registry.hits missing")
          | _ -> Alcotest.fail "stats.registry missing")
        | _ -> Alcotest.fail "stats frame is not an object"))

(* By_digest: re-run a program the server already built without
   re-naming it; unknown digests are a clean error. *)
let test_daemon_by_digest () =
  with_server ~backend:`Inline (fun _ c ->
      let d =
        match run_ok c ~id:"a" ~engine:`Fast (wref "li") with
        | Proto.Result { digest; _ } -> digest
        | _ -> assert false
      in
      (match run_ok c ~id:"b" ~engine:`Fast (Proto.By_digest d) with
       | Proto.Result { warm; _ } ->
         Alcotest.(check bool) "digest re-run is warm" true warm
       | _ -> assert false);
      match
        Client.run c ~id:"c" ~engine:`Fast ~spec:Spec.default
          (Proto.By_digest (String.make 32 '0'))
      with
      | Ok (Proto.Error { code = Proto.Unknown_digest; _ }) -> ()
      | Ok _ -> Alcotest.fail "unknown digest not rejected"
      | Error m -> Alcotest.failf "unknown digest: %s" m)

let test_daemon_unknown_workload () =
  with_server ~backend:`Inline (fun _ c ->
      match
        Client.run c ~id:"x" ~engine:`Fast ~spec:Spec.default
          (Proto.Workload { name = "190.vaporware"; scale = None })
      with
      | Ok (Proto.Error { code = Proto.Unknown_workload; _ }) -> ()
      | Ok _ -> Alcotest.fail "unknown workload not rejected"
      | Error m -> Alcotest.failf "unexpected transport error: %s" m)

(* Concurrent clients against the fork backend: submissions overlap on
   the server; every response still matches a direct run. *)
let test_daemon_concurrent_clients () =
  with_server ~backend:`Fork ~jobs:2 (fun addr c0 ->
      let names = [ "li"; "compress"; "li" ] in
      let conns =
        c0
        :: List.map
             (fun _ ->
               match Client.connect ~retries:20 addr with
               | Ok c -> c
               | Error m -> Alcotest.failf "connect: %s" m)
             (List.tl names)
      in
      Fun.protect
        ~finally:(fun () -> List.iter Client.close (List.tl conns))
        (fun () ->
          (* fire all requests before reading any response *)
          List.iteri
            (fun i (c, name) ->
              match
                Client.send c
                  (Proto.Run
                     { id = Printf.sprintf "c%d" i; engine = `Fast;
                       spec = Spec.default; program = wref name;
                       fault = None })
              with
              | Ok () -> ()
              | Error m -> Alcotest.failf "send: %s" m)
            (List.combine conns names);
          List.iteri
            (fun i (c, name) ->
              let _, prog = workload name in
              (* a duplicate workload may be served warm once the first
                 finishes, so compare the warm-invariant part *)
              let expect = arch_str (direct `Fast Spec.default prog) in
              let rec await () =
                match Client.recv c with
                | Error m -> Alcotest.failf "recv: %s" m
                | Ok (Proto.Accepted _) -> await ()
                | Ok (Proto.Result { result; _ }) ->
                  check Alcotest.string
                    (Printf.sprintf "client %d (%s) = direct" i name)
                    expect (arch_str result)
                | Ok (Proto.Error { message; _ }) ->
                  Alcotest.failf "client %d: %s" i message
                | Ok _ -> Alcotest.failf "client %d: unexpected frame" i
              in
              await ())
            (List.combine conns names)))

(* An injected worker crash surfaces as a worker_crashed error frame —
   and the daemon survives to serve the next request. *)
let test_daemon_worker_crash () =
  with_server ~backend:`Fork ~allow_fault:true (fun _ c ->
      (match
         Client.run c ~id:"boom" ~engine:`Fast ~spec:Spec.default
           ~fault:"crash" (wref "li")
       with
       | Ok (Proto.Error { code = Proto.Worker_crashed; _ }) -> ()
       | Ok _ -> Alcotest.fail "crash did not produce worker_crashed"
       | Error m -> Alcotest.failf "crash request: %s" m);
      match run_ok c ~id:"after" ~engine:`Fast (wref "li") with
      | Proto.Result _ -> ()
      | _ -> assert false)

(* A hung worker is killed at the timeout and answered with an error. *)
let test_daemon_timeout () =
  with_server ~backend:`Fork ~allow_fault:true ~timeout_s:0.3 (fun _ c ->
      match
        Client.run c ~id:"hang" ~engine:`Fast ~spec:Spec.default
          ~fault:"hang" (wref "li")
      with
      | Ok (Proto.Error { code = Proto.Timeout; _ }) -> ()
      | Ok _ -> Alcotest.fail "hang did not time out"
      | Error m -> Alcotest.failf "hang request: %s" m)

(* Faults are refused unless the server opted in. *)
let test_daemon_fault_gate () =
  with_server ~backend:`Inline (fun _ c ->
      match
        Client.run c ~id:"x" ~engine:`Fast ~spec:Spec.default
          ~fault:"crash" (wref "li")
      with
      | Ok (Proto.Error { code = Proto.Bad_request; _ }) -> ()
      | Ok _ -> Alcotest.fail "fault accepted without allow_fault"
      | Error m -> Alcotest.failf "unexpected transport error: %s" m)

(* ---------------------------------------------------------------- *)
(* The observability acceptance test: a forked daemon with every
   telemetry feature enabled — structured logging, slow-trace dumps,
   span buffering — serves concurrent runs, and we assert
   (a) the telemetry frame's stitched Chrome trace holds server- and
       worker-side spans from distinct pids sharing one request id,
   (b) the queue-wait/run-latency histograms and registry gauges are
       populated,
   (c) results are bit-identical to a direct Sim.run — telemetry is
       strictly passive. *)
let test_daemon_telemetry_acceptance () =
  let module M = Fastsim_obs.Metrics in
  let module Log = Fastsim_obs.Log in
  let tmp_dir = ref "" in
  let tweak cfg dir =
    tmp_dir := dir;
    { cfg with
      Server.log =
        Log.open_file ~level:Log.Debug (Filename.concat dir "server.log");
      slow_trace_s = 0.000001 (* every request dumps its trace *);
      trace_dir = Some (Filename.concat dir "traces") }
  in
  with_server ~backend:`Fork ~jobs:2 ~tweak (fun addr c0 ->
      let c1 =
        match Client.connect ~retries:20 addr with
        | Ok c -> c
        | Error m -> Alcotest.failf "connect: %s" m
      in
      Fun.protect
        ~finally:(fun () -> Client.close c1)
        (fun () ->
          (* two overlapping runs, then a warm repeat *)
          List.iter
            (fun (c, id, name) ->
              match
                Client.send c
                  (Proto.Run
                     { id; engine = `Fast; spec = Spec.default;
                       program = wref name; fault = None })
              with
              | Ok () -> ()
              | Error m -> Alcotest.failf "send: %s" m)
            [ (c0, "li0", "li"); (c1, "cp0", "compress") ];
          let await c id =
            let rec go () =
              match Client.recv c with
              | Error m -> Alcotest.failf "recv %s: %s" id m
              | Ok (Proto.Accepted _) -> go ()
              | Ok (Proto.Result { result; _ }) -> result
              | Ok (Proto.Error { message; _ }) ->
                Alcotest.failf "%s: %s" id message
              | Ok _ -> Alcotest.failf "%s: unexpected frame" id
            in
            go ()
          in
          let r_li = await c0 "li0" in
          let _ = await c1 "cp0" in
          (* (c) bit-identity with telemetry fully enabled *)
          let _, prog = workload "li" in
          check Alcotest.string "telemetry-on result = direct"
            (result_str (direct `Fast Spec.default prog))
            (result_str r_li);
          (match run_ok c0 ~id:"li1" ~engine:`Fast (wref "li") with
           | Proto.Result { warm; _ } ->
             Alcotest.(check bool) "repeat is warm" true warm
           | _ -> assert false);
          (* scrape one full telemetry frame with the span trace *)
          let tel =
            match Client.telemetry c0 ~id:"t" ~include_trace:true () with
            | Ok j -> j
            | Error m -> Alcotest.failf "telemetry: %s" m
          in
          List.iter
            (fun k ->
              Alcotest.(check bool) (k ^ " member present") true
                (J.mem k tel))
            [ "at"; "server"; "registry"; "metrics"; "trace" ];
          (* (b) histograms and gauges are populated *)
          let snap =
            match M.snapshot_of_json (J.member "metrics" tel) with
            | Ok s -> s
            | Error m -> Alcotest.failf "metrics decode: %s" m
          in
          let hist n =
            match List.assoc_opt n snap.M.s_histograms with
            | Some h -> h
            | None -> Alcotest.failf "histogram %s missing" n
          in
          Alcotest.(check bool) "queue wait observed" true
            ((hist "serve.queue_wait_us").M.s_count >= 3);
          Alcotest.(check bool) "run latency observed" true
            ((hist "serve.run_latency_us").M.s_count >= 3);
          Alcotest.(check bool) "frame decode observed" true
            ((hist "serve.frame_decode_us").M.s_count >= 3);
          Alcotest.(check bool) "replay fraction observed" true
            ((hist "serve.replay_fraction_pct").M.s_count >= 3);
          let counter n =
            Option.value ~default:0 (List.assoc_opt n snap.M.s_counters)
          in
          Alcotest.(check bool) "warm hit counted" true
            (counter "serve.warm_hits" >= 1);
          Alcotest.(check bool) "replayed instructions counted" true
            (counter "serve.replayed_retired" > 0);
          Alcotest.(check bool) "registry gauges exported" true
            (List.mem_assoc "registry.hot_bytes" snap.M.s_gauges
             && List.mem_assoc "registry.entries" snap.M.s_gauges);
          (* (a) the stitched trace spans at least two processes, and
             one request id appears on spans from both sides *)
          let events =
            match J.member "traceEvents" (J.member "trace" tel) with
            | J.List es -> es
            | _ -> Alcotest.fail "trace has no traceEvents"
          in
          let xs =
            List.filter (fun e -> J.to_str (J.member "ph" e) = "X") events
          in
          let pid_req =
            List.filter_map
              (fun e ->
                let args = J.member "args" e in
                if J.mem "req" args then
                  Some (J.to_int (J.member "pid" e),
                        J.to_str (J.member "req" args))
                else None)
              xs
          in
          let pids = List.sort_uniq compare (List.map fst pid_req) in
          Alcotest.(check bool) "spans from >= 2 processes" true
            (List.length pids >= 2);
          let stitched_req =
            List.exists
              (fun (_, req) ->
                List.length
                  (List.sort_uniq compare
                     (List.filter_map
                        (fun (p, r) -> if r = req then Some p else None)
                        pid_req))
                >= 2)
              pid_req
          in
          Alcotest.(check bool)
            "a request id spans server and worker pids" true stitched_req;
          let span_names = List.map (fun e -> J.to_str (J.member "name" e)) xs in
          List.iter
            (fun n ->
              Alcotest.(check bool) (n ^ " span present") true
                (List.mem n span_names))
            [ "queue.wait"; "request.run"; "pool.fork"; "engine.run" ];
          (* every request crossed the slow-trace threshold: stitched
             per-request dumps landed in trace_dir *)
          let traces = Sys.readdir (Filename.concat !tmp_dir "traces") in
          Alcotest.(check bool) "slow-request traces dumped" true
            (Array.length traces >= 3);
          (* the structured log carries correlated request lines *)
          let log_lines =
            let ic = open_in (Filename.concat !tmp_dir "server.log") in
            let ls = ref [] in
            (try
               while true do
                 ls := input_line ic :: !ls
               done
             with End_of_file -> close_in ic);
            !ls
          in
          let has ev =
            List.exists
              (fun l ->
                match J.of_string l with
                | J.Obj fields ->
                  List.assoc_opt "event" fields = Some (J.Str ev)
                | _ | exception J.Parse_error _ -> false)
              log_lines
          in
          Alcotest.(check bool) "serve.start logged" true (has "serve.start");
          Alcotest.(check bool) "accepted lines logged" true
            (has "serve.accepted");
          Alcotest.(check bool) "settled lines logged" true
            (has "serve.settled");
          Alcotest.(check bool) "pool spawns logged" true (has "pool.spawn")))

(* ---------------------------------------------------------------- *)
(* Outq: the offset-windowed output queue behind pump_writes. Chunks
   drain across partial writes without recopying, pending tracks unsent
   bytes exactly, and a vanished peer surfaces as [`Closed]. *)

let test_outq_windowed_writes () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let module Outq = Fastsim_serve.Outq in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock a;
  Unix.set_nonblock b;
  (* a small send buffer forces several partial writes per chunk *)
  (try Unix.setsockopt_int a Unix.SO_SNDBUF 4096 with Unix.Unix_error _ -> ());
  let q = Outq.create () in
  check Alcotest.bool "fresh queue empty" true (Outq.is_empty q);
  let chunk n = Bytes.init 65536 (fun i -> Char.chr ((i + n) land 0xff)) in
  Outq.push q (chunk 0);
  Outq.push q (chunk 1);
  check Alcotest.int "pending counts both chunks" (2 * 65536)
    (Outq.pending q);
  let got = Buffer.create (2 * 65536) in
  let rbuf = Bytes.create 8192 in
  let deadline = Unix.gettimeofday () +. 10. in
  while
    ((not (Outq.is_empty q)) || Buffer.length got < 2 * 65536)
    && Unix.gettimeofday () < deadline
  do
    (match Outq.pump q a with
     | `Ok -> ()
     | `Closed -> Alcotest.fail "pump reported closed on a live peer");
    let rec drain () =
      match Unix.read b rbuf 0 (Bytes.length rbuf) with
      | n when n > 0 ->
        Buffer.add_subbytes got rbuf 0 n;
        drain ()
      | _ -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
    in
    drain ()
  done;
  check Alcotest.bool "queue drained" true (Outq.is_empty q);
  check Alcotest.int "pending back to zero" 0 (Outq.pending q);
  let expect = Bytes.cat (chunk 0) (chunk 1) in
  check Alcotest.string "bytes arrive in order, uncorrupted"
    (Digest.to_hex (Digest.bytes expect))
    (Digest.to_hex (Digest.string (Buffer.contents got)));
  (* a closed consumer: pump reports `Closed once the kernel notices *)
  Unix.close b;
  Outq.push q (Bytes.make 4096 'x');
  let rec until_closed tries =
    if tries = 0 then Alcotest.fail "pump never reported closed peer"
    else
      match Outq.pump q a with
      | `Closed -> ()
      | `Ok ->
        Outq.push q (Bytes.make 4096 'x');
        until_closed (tries - 1)
  in
  until_closed 100;
  Outq.clear q;
  check Alcotest.bool "clear empties" true (Outq.is_empty q);
  Unix.close a

(* A consumer that stops reading while responses pile up is closed once
   its backlog exceeds the output budget — the daemon's heap no longer
   grows with the slowest client, and other connections are unaffected. *)
let test_daemon_slow_consumer () =
  let tweak cfg (_ : string) = { cfg with Server.max_out_bytes = 8192 } in
  with_server ~backend:`Inline ~tweak (fun addr c0 ->
      let flood =
        match Client.connect ~retries:20 addr with
        | Ok c -> c
        | Error m -> Alcotest.failf "connect: %s" m
      in
      (* fire stats requests without reading any replies: the server
         queues responses until the budget trips and cuts us loose *)
      let sent = ref 0 in
      (try
         for i = 1 to 200 do
           match Client.send flood (Proto.Stats { id = string_of_int i }) with
           | Ok () -> incr sent
           | Error _ -> raise Exit
         done
       with Exit -> ());
      Alcotest.(check bool) "some requests went out" true (!sent > 10);
      (* now try to read them all back: the server closed us early, so
         we must hit EOF before the full set arrives *)
      let received = ref 0 in
      (try
         while !received < !sent do
           match Client.recv flood with
           | Ok _ -> incr received
           | Error _ -> raise Exit
         done
       with Exit -> ());
      Client.close flood;
      Alcotest.(check bool)
        (Printf.sprintf "connection cut before all replies (%d/%d)"
           !received !sent)
        true
        (!received < !sent);
      (* the well-behaved connection still works *)
      match run_ok c0 ~id:"after" ~engine:`Fast (wref "li") with
      | Proto.Result _ -> ()
      | _ -> assert false)

(* ---------------------------------------------------------------- *)
(* Registry.adopt: the rename path, the cross-filesystem copy fallback,
   and a missing source never installing a phantom entry. *)

let test_adopt_fallback () =
  Fastsim_exec.Pool.with_temp_dir ~prefix:"fastsim-adopt" (fun dir ->
      let _, prog = workload "li" in
      let digest = Digest.to_hex (Memo.Persist.program_digest prog) in
      let reg = Registry.create ~dir:(Filename.concat dir "reg") () in
      let key = Registry.spec_key Spec.default in
      let acquire () =
        Registry.acquire reg ~digest ~spec_key:key
          ~policy:Memo.Pcache.Unbounded ~program:prog
      in
      (* a worker-made cache, saved where a worker would leave it *)
      let pc = Memo.Pcache.create () in
      let cold =
        Sim.run ~engine:`Fast (Spec.with_pcache pc Spec.default) prog
      in
      let save_src path =
        Memo.Persist.Codec.save_file pc ~program:prog path;
        path
      in
      (* cross-filesystem source when the host offers one (/dev/shm is
         usually a different mount than the temp dir): rename fails
         EXDEV and adopt must fall back to copy-then-rename. On hosts
         where both land on one filesystem this degrades to the plain
         rename path — still a valid adoption. *)
      let src =
        let shm = "/dev/shm" in
        let usable =
          Sys.file_exists shm && Sys.is_directory shm
          && (try
                let probe = Filename.concat shm
                    (Printf.sprintf "fastsim-adopt-%d" (Unix.getpid ())) in
                let oc = open_out probe in
                close_out oc;
                Sys.remove probe;
                true
              with Sys_error _ -> false)
        in
        if usable then
          save_src
            (Filename.concat shm
               (Printf.sprintf "fastsim-adopt-%d.pcache" (Unix.getpid ())))
        else save_src (Filename.concat dir "handoff.pcache")
      in
      Registry.adopt reg ~digest ~spec_key:key ~src ~bytes:1;
      Alcotest.(check bool) "source consumed" false (Sys.file_exists src);
      Alcotest.(check bool) "no temp copy left behind" true
        (Array.for_all
           (fun f -> not (Filename.check_suffix f ".adopt"))
           (Sys.readdir (Filename.concat dir "reg")));
      (* the adopted file reloads and actually replays *)
      (match acquire () with
       | None -> Alcotest.fail "adopted entry did not reload"
       | Some pc' ->
         let r =
           Sim.run ~engine:`Fast (Spec.with_pcache pc' Spec.default) prog
         in
         check Alcotest.string "adopted cache replays identically"
           (arch_str cold) (arch_str r);
         (match r.Sim.memo with
          | Some m ->
            Alcotest.(check bool) "adopted cache replays" true
              (m.Memo.Stats.replayed_retired > 0)
          | None -> Alcotest.fail "no memo stats"));
      (* a vanished source must not install an entry that acquire would
         then vouch for *)
      let key2 = Registry.spec_key (Spec.with_predictor Sim.Taken Spec.default) in
      Registry.adopt reg ~digest ~spec_key:key2
        ~src:(Filename.concat dir "nonexistent.pcache") ~bytes:1;
      match
        Registry.acquire reg ~digest ~spec_key:key2
          ~policy:Memo.Pcache.Unbounded ~program:prog
      with
      | Some _ -> Alcotest.fail "phantom adoption produced a cache"
      | None -> ())

(* Several forked workers produce persist files concurrently; the
   parent adopts them all under a budget that fits only one hot cache,
   then reloads each — adoption, reload and LRU eviction interleave
   without losing an entry. *)
let test_adopt_concurrent_workers () =
  Fastsim_exec.Pool.with_temp_dir ~prefix:"fastsim-adoptc" (fun dir ->
      let _, prog = workload "li" in
      let digest = Digest.to_hex (Memo.Persist.program_digest prog) in
      let specs =
        [ Spec.default;
          Spec.with_predictor Sim.Taken Spec.default;
          Spec.with_predictor Sim.Not_taken Spec.default ]
      in
      (* a 1-byte budget: every commit evicts all other hot entries, so
         adoption, reload and LRU eviction interleave maximally *)
      let reg =
        Registry.create ~dir:(Filename.concat dir "reg") ~budget_bytes:1
          ~program_of:(fun d -> if d = digest then Some prog else None)
          ()
      in
      let srcs =
        List.mapi
          (fun i _ -> Filename.concat dir (Printf.sprintf "w%d.pcache" i))
          specs
      in
      flush stdout;
      flush stderr;
      let pids =
        List.map2
          (fun spec src ->
            match Unix.fork () with
            | 0 ->
              (try
                 let pc = Memo.Pcache.create () in
                 ignore
                   (Sim.run ~engine:`Fast (Spec.with_pcache pc spec) prog
                     : Sim.result);
                 Memo.Persist.Codec.save_file pc ~program:prog src;
                 Unix._exit 0
               with _ -> Unix._exit 1)
            | pid -> pid)
          specs srcs
      in
      List.iter
        (fun pid ->
          match Unix.waitpid [] pid with
          | _, Unix.WEXITED 0 -> ()
          | _ -> Alcotest.fail "worker child failed")
        pids;
      List.iter2
        (fun spec src ->
          Registry.adopt reg ~digest ~spec_key:(Registry.spec_key spec) ~src
            ~bytes:1)
        specs srcs;
      check Alcotest.int "every adoption landed" (List.length specs)
        (Registry.entry_count reg);
      (* reload each under the tight budget: every acquire succeeds and
         replays, while LRU eviction keeps the hot footprint at one *)
      List.iter
        (fun spec ->
          match
            Registry.acquire reg ~digest ~spec_key:(Registry.spec_key spec)
              ~policy:spec.Spec.policy ~program:prog
          with
          | None -> Alcotest.fail "adopted entry lost"
          | Some pc ->
            let r = Sim.run ~engine:`Fast (Spec.with_pcache pc spec) prog in
            (match r.Sim.memo with
             | Some m ->
               Alcotest.(check bool) "reloaded adoption replays" true
                 (m.Memo.Stats.replayed_retired > 0)
             | None -> Alcotest.fail "no memo stats");
            Registry.commit_mem reg ~digest ~spec_key:(Registry.spec_key spec)
              pc)
        specs;
      check Alcotest.int "all reloads counted" (List.length specs)
        (Registry.reloads reg);
      Alcotest.(check bool) "budget forced evictions" true
        (Registry.evictions reg >= List.length specs - 1);
      check Alcotest.int "one cache hot at the end" 1 (Registry.hot_count reg))

(* ---------------------------------------------------------------- *)
(* The fleet backend: persistent shard workers with digest-affinity
   warm caches. *)

(* stats helpers: descend ["server"; "running"] style paths *)
let stats_get c keys =
  match Client.stats c ~id:"poll" with
  | Error m -> Alcotest.failf "stats: %s" m
  | Ok j ->
    let rec get j = function
      | [] -> j
      | k :: rest -> (
        match j with
        | J.Obj fs -> (
          match List.assoc_opt k fs with
          | Some v -> get v rest
          | None -> Alcotest.failf "stats field %s missing" k)
        | _ -> Alcotest.failf "stats field %s is not an object" k)
    in
    get j keys

let stats_int c keys =
  match stats_get c keys with
  | J.Int n -> n
  | _ -> Alcotest.failf "stats field %s not an int" (String.concat "." keys)

let wait_until ~desc ?(timeout = 15.) f =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () -. t0 > timeout then
      Alcotest.failf "timed out waiting for %s" desc
    else begin
      Unix.sleepf 0.05;
      go ()
    end
  in
  go ()

(* Bit-identity through the fleet: for every engine, a cold daemon
   response equals a direct Sim.run byte-for-byte. *)
let test_fleet_bit_identity () =
  with_server ~backend:`Fleet ~jobs:2 (fun _ c ->
      let _, prog = workload "li" in
      List.iter
        (fun engine ->
          let expect = result_str (direct engine Spec.default prog) in
          match run_ok c ~id:"bit" ~engine (wref "li") with
          | Proto.Result { result; _ } ->
            check Alcotest.string "fleet daemon = direct" expect
              (result_str result)
          | _ -> assert false)
        [ `Fast; `Slow; `Baseline ])

(* The tentpole's point: a repeat request hits the shard's live warm
   cache — no acquire-time reload, no persist round-trip — and the
   aggregated stats present the sharded registries as one. *)
let test_fleet_warm_repeat () =
  with_server ~backend:`Fleet ~jobs:2 (fun _ c ->
      let first = run_ok c ~id:"a" ~engine:`Fast (wref "li") in
      let second = run_ok c ~id:"b" ~engine:`Fast (wref "li") in
      (match (first, second) with
       | ( Proto.Result { result = r1; warm = w1; _ },
           Proto.Result { result = r2; warm = w2; _ } ) ->
         Alcotest.(check bool) "first is cold" false w1;
         Alcotest.(check bool) "second is warm" true w2;
         check Alcotest.string "warm result identical" (arch_str r1)
           (arch_str r2);
         (match r2.Sim.memo with
          | Some m ->
            Alcotest.(check bool) "warm run replays" true
              (m.Memo.Stats.replayed_retired > 0)
          | None -> Alcotest.fail "no memo stats")
       | _ -> assert false);
      (* aggregated registry stats count the shard-side hit *)
      Alcotest.(check bool) "fleet-wide registry hit" true
        (stats_int c [ "registry"; "hits" ] >= 1);
      (* per-shard detail is exported; one shard took both requests
         (digest affinity), no respawns happened *)
      match stats_get c [ "fleet" ] with
      | J.List shards ->
        check Alcotest.int "one shard entry per job" 2 (List.length shards);
        let requests =
          List.map
            (fun s ->
              match s with
              | J.Obj fs -> (
                match List.assoc_opt "requests" fs with
                | Some (J.Int n) -> n
                | _ -> 0)
              | _ -> 0)
            shards
        in
        Alcotest.(check bool) "affinity kept both runs on one shard" true
          (List.mem 2 requests)
      | _ -> Alcotest.fail "stats.fleet missing")

(* The serve acceptance test at higher concurrency: 8 clients firing at
   4 shard workers, mixed workloads — every response architectural-
   identical to a direct run. *)
let test_fleet_concurrent_clients () =
  with_server ~backend:`Fleet ~jobs:4 (fun addr c0 ->
      let names =
        [ "li"; "compress"; "li"; "compress"; "li"; "go"; "compress"; "li" ]
      in
      let conns =
        c0
        :: List.map
             (fun _ ->
               match Client.connect ~retries:20 addr with
               | Ok c -> c
               | Error m -> Alcotest.failf "connect: %s" m)
             (List.tl names)
      in
      Fun.protect
        ~finally:(fun () -> List.iter Client.close (List.tl conns))
        (fun () ->
          List.iteri
            (fun i (c, name) ->
              match
                Client.send c
                  (Proto.Run
                     { id = Printf.sprintf "c%d" i; engine = `Fast;
                       spec = Spec.default; program = wref name;
                       fault = None })
              with
              | Ok () -> ()
              | Error m -> Alcotest.failf "send: %s" m)
            (List.combine conns names);
          List.iteri
            (fun i (c, name) ->
              let _, prog = workload name in
              let expect = arch_str (direct `Fast Spec.default prog) in
              let rec await () =
                match Client.recv c with
                | Error m -> Alcotest.failf "recv: %s" m
                | Ok (Proto.Accepted _) -> await ()
                | Ok (Proto.Result { result; _ }) ->
                  check Alcotest.string
                    (Printf.sprintf "client %d (%s) = direct" i name)
                    expect (arch_str result)
                | Ok (Proto.Error { message; _ }) ->
                  Alcotest.failf "client %d: %s" i message
                | Ok _ -> Alcotest.failf "client %d: unexpected frame" i
              in
              await ())
            (List.combine conns names)))

(* A shard worker that crashes (exception) or dies (exit) surfaces as a
   worker_crashed frame, the worker is respawned, and the shard serves
   the next request — cold, since its warm caches died with it. *)
let test_fleet_crash_respawn () =
  with_server ~backend:`Fleet ~jobs:1 ~allow_fault:true (fun _ c ->
      (match
         Client.run c ~id:"boom" ~engine:`Fast ~spec:Spec.default
           ~fault:"crash" (wref "li")
       with
       | Ok (Proto.Error { code = Proto.Worker_crashed; _ }) -> ()
       | Ok _ -> Alcotest.fail "crash did not produce worker_crashed"
       | Error m -> Alcotest.failf "crash request: %s" m);
      (match run_ok c ~id:"after1" ~engine:`Fast (wref "li") with
       | Proto.Result _ -> ()
       | _ -> assert false);
      (* a hard exit kills the worker process mid-request *)
      (match
         Client.run c ~id:"gone" ~engine:`Fast ~spec:Spec.default
           ~fault:"exit" (wref "li")
       with
       | Ok (Proto.Error { code = Proto.Worker_crashed; _ }) -> ()
       | Ok _ -> Alcotest.fail "exit did not produce worker_crashed"
       | Error m -> Alcotest.failf "exit request: %s" m);
      (match run_ok c ~id:"after2" ~engine:`Fast (wref "li") with
       | Proto.Result _ -> ()
       | _ -> assert false);
      (* the exit respawned the lone shard at least once *)
      match stats_get c [ "fleet" ] with
      | J.List [ J.Obj fs ] -> (
        match List.assoc_opt "respawns" fs with
        | Some (J.Int n) -> Alcotest.(check bool) "respawn counted" true (n >= 1)
        | _ -> Alcotest.fail "shard respawns missing")
      | _ -> Alcotest.fail "stats.fleet missing")

(* A hung shard worker is killed at the timeout; the shard respawns and
   keeps serving. *)
let test_fleet_timeout () =
  with_server ~backend:`Fleet ~jobs:1 ~allow_fault:true ~timeout_s:0.3
    (fun _ c ->
      (match
         Client.run c ~id:"hang" ~engine:`Fast ~spec:Spec.default
           ~fault:"hang" (wref "li")
       with
       | Ok (Proto.Error { code = Proto.Timeout; _ }) -> ()
       | Ok _ -> Alcotest.fail "hang did not time out"
       | Error m -> Alcotest.failf "hang request: %s" m);
      match run_ok c ~id:"after" ~engine:`Fast (wref "li") with
      | Proto.Result _ -> ()
      | _ -> assert false)

(* Regression: a client that disconnects mid-run must not leave a worker
   simulating for nobody. The run is cancelled, the slot freed, and the
   next request proceeds — with jobs=1 the test deadlocks without the
   orphan cancellation. *)
let orphan_cancel_regression backend =
  with_server ~backend ~jobs:1 ~allow_fault:true (fun addr c0 ->
      let c1 =
        match Client.connect ~retries:20 addr with
        | Ok c -> c
        | Error m -> Alcotest.failf "connect: %s" m
      in
      (match
         Client.send c1
           (Proto.Run
              { id = "orphan"; engine = `Fast; spec = Spec.default;
                program = wref "li"; fault = Some "hang" })
       with
       | Ok () -> ()
       | Error m -> Alcotest.failf "send: %s" m);
      wait_until ~desc:"hung run dispatched" (fun () ->
          stats_int c0 [ "server"; "running" ] = 1);
      (* the client vanishes; the daemon must reclaim the slot *)
      Client.close c1;
      wait_until ~desc:"orphaned run reaped" (fun () ->
          stats_int c0 [ "server"; "running" ] = 0);
      (* the lone slot is usable again *)
      match run_ok c0 ~id:"next" ~engine:`Fast (wref "li") with
      | Proto.Result _ -> ()
      | _ -> assert false)

let test_orphan_cancel_fork () = orphan_cancel_regression `Fork
let test_orphan_cancel_fleet () = orphan_cancel_regression `Fleet

(* The domain transport (OCaml 5 only): same identity and warmth
   guarantees, no marshalling or fork anywhere. *)
let test_fleet_domain_transport () =
  if not Fastsim_exec.Domain_shim.available then ()
  else
    let tweak cfg (_ : string) =
      { cfg with Server.fleet_transport = `Domain }
    in
    with_server ~backend:`Fleet ~jobs:2 ~tweak (fun _ c ->
        let _, prog = workload "li" in
        let expect = result_str (direct `Fast Spec.default prog) in
        (match run_ok c ~id:"a" ~engine:`Fast (wref "li") with
         | Proto.Result { result; _ } ->
           check Alcotest.string "domain fleet = direct" expect
             (result_str result)
         | _ -> assert false);
        match run_ok c ~id:"b" ~engine:`Fast (wref "li") with
        | Proto.Result { warm; _ } ->
          Alcotest.(check bool) "repeat is warm" true warm
        | _ -> assert false)

let suite =
  [ Alcotest.test_case "protocol frames round-trip" `Quick
      test_proto_roundtrip;
    Alcotest.test_case "protocol rejects malformed frames" `Quick
      test_proto_rejects_junk;
    Alcotest.test_case "decoder reassembles ragged chunks" `Quick
      test_decoder_reassembly;
    Alcotest.test_case "decoder rejects oversized frames" `Quick
      test_decoder_oversize;
    Alcotest.test_case "address strings parse" `Quick test_address_parse;
    Alcotest.test_case "registry LRU spill and reload" `Quick
      test_registry_lru;
    Alcotest.test_case "registry eviction telemetry" `Quick
      test_registry_eviction_telemetry;
    Alcotest.test_case "shared chain store across specs" `Quick
      test_registry_shared_chain_store;
    Alcotest.test_case "spilled bytes survive spill/reload cycles" `Quick
      test_registry_spilled_bytes_not_double_counted;
    Alcotest.test_case "daemon matches direct run on every engine" `Quick
      test_daemon_bit_identity;
    Alcotest.test_case "repeat request is served warm" `Quick
      test_daemon_warm_repeat;
    Alcotest.test_case "by-digest re-run" `Quick test_daemon_by_digest;
    Alcotest.test_case "unknown workload is a clean error" `Quick
      test_daemon_unknown_workload;
    Alcotest.test_case "concurrent clients, fork backend" `Quick
      test_daemon_concurrent_clients;
    Alcotest.test_case "worker crash becomes an error frame" `Quick
      test_daemon_worker_crash;
    Alcotest.test_case "hung worker is timed out" `Quick
      test_daemon_timeout;
    Alcotest.test_case "fault injection is gated" `Quick
      test_daemon_fault_gate;
    Alcotest.test_case "telemetry acceptance: trace, histograms, identity"
      `Quick test_daemon_telemetry_acceptance;
    Alcotest.test_case "outq drains partial writes without copying" `Quick
      test_outq_windowed_writes;
    Alcotest.test_case "slow consumer is closed at the output budget" `Quick
      test_daemon_slow_consumer;
    Alcotest.test_case "registry adopt: rename, copy fallback, missing src"
      `Quick test_adopt_fallback;
    Alcotest.test_case "concurrent adoption under a tight budget" `Quick
      test_adopt_concurrent_workers;
    Alcotest.test_case "fleet matches direct run on every engine" `Quick
      test_fleet_bit_identity;
    Alcotest.test_case "fleet repeat request hits the shard warm cache"
      `Quick test_fleet_warm_repeat;
    Alcotest.test_case "fleet serves concurrent clients" `Quick
      test_fleet_concurrent_clients;
    Alcotest.test_case "fleet worker crash and exit respawn the shard"
      `Quick test_fleet_crash_respawn;
    Alcotest.test_case "fleet hung worker is timed out" `Quick
      test_fleet_timeout;
    Alcotest.test_case "disconnect cancels the orphaned run (fork)" `Quick
      test_orphan_cancel_fork;
    Alcotest.test_case "disconnect cancels the orphaned run (fleet)" `Quick
      test_orphan_cancel_fleet;
    Alcotest.test_case "fleet over domains (OCaml 5)" `Quick
      test_fleet_domain_transport ]
