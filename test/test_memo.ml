(* The p-action cache: group recording, outcome grafting, replacement
   policies, and soundness checks. Driven synthetically, independent of the
   simulator. *)

let check = Alcotest.check

(* A fake config key with a given entry count (for size accounting). The
   header layout matches Snapshot: byte 5 = entries, byte 6 = indirects. *)
let fake_key ?(entries = 4) ?(ind = 0) tag =
  let b = Bytes.make (11 + (4 * entries) + (4 * ind)) '\000' in
  Bytes.set b 5 (Char.chr entries);
  Bytes.set b 6 (Char.chr ind);
  (* make keys distinct *)
  Bytes.set b 7 (Char.chr (tag land 0xff));
  Bytes.set b 8 (Char.chr ((tag lsr 8) land 0xff));
  Bytes.unsafe_to_string b

let cond taken = Uarch.Oracle.C_cond { taken; mispredicted = false }

let test_intern_dedup () =
  let pc = Memo.Pcache.create () in
  let a = Memo.Pcache.intern pc (fake_key 1) in
  let b = Memo.Pcache.intern pc (fake_key 1) in
  check Alcotest.bool "same node" true (a == b);
  let c = Memo.Pcache.intern pc (fake_key 2) in
  check Alcotest.bool "distinct node" false (a == c);
  check Alcotest.int "static configs" 2
    (Memo.Pcache.counters pc).static_configs

let test_merge_and_graft () =
  let pc = Memo.Pcache.create () in
  let cfg = Memo.Pcache.intern pc (fake_key 1) in
  let next =
    Memo.Pcache.merge_group pc cfg ~classes:[||] ~silent:3 ~retired:5
      ~items:[ Memo.Action.I_load 2; Memo.Action.I_store ]
      ~terminal:(Memo.Action.T_goto (Memo.Pcache.intern pc (fake_key 2)))
  in
  (match next with
   | Some c -> check Alcotest.bool "next interned" true
                 (String.equal c.Memo.Action.cfg_key (fake_key 2))
   | None -> Alcotest.fail "expected successor");
  (* re-record the same path: nothing new is allocated *)
  let actions_before = (Memo.Pcache.counters pc).static_actions in
  ignore
    (Memo.Pcache.merge_group pc cfg ~classes:[||] ~silent:3 ~retired:5
       ~items:[ Memo.Action.I_load 2; Memo.Action.I_store ]
       ~terminal:(Memo.Action.T_goto (Memo.Pcache.intern pc (fake_key 2)))
      : Memo.Action.config option);
  check Alcotest.int "no new actions on duplicate" actions_before
    (Memo.Pcache.counters pc).static_actions;
  (* a different load latency grafts a new branch *)
  ignore
    (Memo.Pcache.merge_group pc cfg ~classes:[||] ~silent:3 ~retired:5
       ~items:[ Memo.Action.I_load 9; Memo.Action.I_store ]
       ~terminal:(Memo.Action.T_goto (Memo.Pcache.intern pc (fake_key 3)))
      : Memo.Action.config option);
  check Alcotest.bool "new actions for new outcome" true
    ((Memo.Pcache.counters pc).static_actions > actions_before);
  match cfg.Memo.Action.cfg_group with
  | Some { Memo.Action.g_first = Memo.Action.N_load ln; _ } ->
    check Alcotest.int "two outcome edges" 2
      (List.length ln.Memo.Action.l_edges)
  | _ -> Alcotest.fail "expected load node at group head"

let test_determinism_violation () =
  let pc = Memo.Pcache.create () in
  let cfg = Memo.Pcache.intern pc (fake_key 1) in
  ignore
    (Memo.Pcache.merge_group pc cfg ~classes:[||] ~silent:1 ~retired:2
       ~items:[ Memo.Action.I_ctl (cond true) ]
       ~terminal:Memo.Action.T_halt
      : Memo.Action.config option);
  (* same config, different silent-cycle count: impossible if the detailed
     simulator is deterministic *)
  match
    Memo.Pcache.merge_group pc cfg ~classes:[||] ~silent:2 ~retired:2
      ~items:[ Memo.Action.I_ctl (cond true) ]
      ~terminal:Memo.Action.T_halt
  with
  | _ -> Alcotest.fail "expected Determinism_violation"
  | exception Memo.Pcache.Determinism_violation _ -> ()

let test_kind_mismatch_violation () =
  let pc = Memo.Pcache.create () in
  let cfg = Memo.Pcache.intern pc (fake_key 1) in
  ignore
    (Memo.Pcache.merge_group pc cfg ~classes:[||] ~silent:0 ~retired:1
       ~items:[ Memo.Action.I_store ]
       ~terminal:Memo.Action.T_halt
      : Memo.Action.config option);
  match
    Memo.Pcache.merge_group pc cfg ~classes:[||] ~silent:0 ~retired:1
      ~items:[ Memo.Action.I_rollback 0 ]
      ~terminal:Memo.Action.T_halt
  with
  | _ -> Alcotest.fail "expected Determinism_violation"
  | exception Memo.Pcache.Determinism_violation _ -> ()

let fill pc n =
  (* creates n configs each with a small group *)
  for i = 1 to n do
    let cfg = Memo.Pcache.intern pc (fake_key i) in
    if cfg.Memo.Action.cfg_group = None then
      ignore
        (Memo.Pcache.merge_group pc cfg ~classes:[||] ~silent:1 ~retired:1
           ~items:[ Memo.Action.I_load i ]
           ~terminal:(Memo.Action.T_goto (Memo.Pcache.intern pc (fake_key (i + 1))))
          : Memo.Action.config option)
  done

let test_unbounded_keeps_everything () =
  let pc = Memo.Pcache.create ~policy:Memo.Pcache.Unbounded () in
  fill pc 100;
  check Alcotest.bool "kept" true
    ((Memo.Pcache.counters pc).live_configs >= 100);
  (match Memo.Pcache.check_budget pc with
   | `Kept -> ()
   | _ -> Alcotest.fail "unbounded never flushes")

let test_flush_on_full () =
  let pc = Memo.Pcache.create ~policy:(Memo.Pcache.Flush_on_full 2000) () in
  fill pc 100;
  (match Memo.Pcache.check_budget pc with
   | `Flushed -> ()
   | _ -> Alcotest.fail "expected flush");
  let c = Memo.Pcache.counters pc in
  check Alcotest.int "emptied" 0 c.live_configs;
  check Alcotest.int "bytes zero" 0 c.modeled_bytes;
  check Alcotest.int "one flush" 1 c.flushes;
  check Alcotest.bool "peak remembered" true (c.peak_modeled_bytes > 2000)

let test_copying_gc_keeps_touched () =
  let pc = Memo.Pcache.create ~policy:(Memo.Pcache.Copying_gc 4000) () in
  fill pc 100;
  (* touch a handful, then collect *)
  for i = 1 to 5 do
    Memo.Pcache.touch pc (Memo.Pcache.intern pc (fake_key i))
  done;
  (match Memo.Pcache.check_budget pc with
   | `Collected -> ()
   | _ -> Alcotest.fail "expected collection");
  let c = Memo.Pcache.counters pc in
  check Alcotest.bool "survivors are the touched ones" true
    (c.live_configs >= 5 && c.live_configs < 100);
  check Alcotest.bool "gc stats" true
    (c.last_gc_population = 100 + 1 && c.last_gc_survivors = c.live_configs);
  (* untouched configs are marked dropped with groups freed *)
  check Alcotest.bool "budget respected or flushed" true
    (c.modeled_bytes <= 4000)

let test_generational_promotion () =
  let pc =
    Memo.Pcache.create
      ~policy:(Memo.Pcache.Generational_gc { nursery = 1500; total = 100000 })
      ()
  in
  fill pc 50;
  for i = 1 to 5 do
    Memo.Pcache.touch pc (Memo.Pcache.intern pc (fake_key i))
  done;
  (match Memo.Pcache.check_budget pc with
   | `Collected -> ()
   | _ -> Alcotest.fail "expected minor collection");
  let survivors = ref [] in
  Memo.Pcache.iter_configs (fun c -> survivors := c :: !survivors) pc;
  check Alcotest.bool "survivors promoted to old gen" true
    (List.for_all (fun c -> c.Memo.Action.cfg_old_gen) !survivors)

let test_resolve_goto_heals () =
  let pc = Memo.Pcache.create ~policy:(Memo.Pcache.Copying_gc 2000) () in
  let cfg = Memo.Pcache.intern pc (fake_key 1) in
  ignore
    (Memo.Pcache.merge_group pc cfg ~classes:[||] ~silent:0 ~retired:1
       ~items:[]
       ~terminal:(Memo.Action.T_goto (Memo.Pcache.intern pc (fake_key 2)))
      : Memo.Action.config option);
  let goto_node =
    match cfg.Memo.Action.cfg_group with
    | Some { Memo.Action.g_first = Memo.Action.N_goto g; _ } -> g
    | _ -> Alcotest.fail "expected goto"
  in
  let target = goto_node.Memo.Action.target in
  (* simulate an eviction + regeneration of the target *)
  target.Memo.Action.cfg_dropped <- true;
  let resolved = Memo.Pcache.resolve_goto pc goto_node in
  (* the table still holds a live node under that key; healing re-points *)
  check Alcotest.bool "healed to live node" true
    (not resolved.Memo.Action.cfg_dropped
    || resolved.Memo.Action.cfg_key = fake_key 2)

let test_node_bytes () =
  let open Memo.Action in
  check Alcotest.int "halt" 8 (node_bytes N_halt);
  check Alcotest.int "store" 8 (node_bytes (N_store N_halt));
  check Alcotest.int "load 1 edge" 16
    (node_bytes (N_load { l_edges = [ (1, N_halt) ] }));
  check Alcotest.int "load 3 edges" 32
    (node_bytes
       (N_load { l_edges = [ (1, N_halt); (2, N_halt); (3, N_halt) ] }))

(* Replay-episode accounting. The replay engine has several exit paths
   and may call end_episode more than once per episode; the guard in
   Stats.end_episode must make that harmless. *)
let test_stats_end_episode_guard () =
  let s = Memo.Stats.create () in
  (* ending with no actions recorded: not an episode *)
  Memo.Stats.end_episode s;
  check Alcotest.int "empty end is not an episode" 0 s.Memo.Stats.episodes;
  Memo.Stats.note_action s;
  Memo.Stats.note_action s;
  Memo.Stats.note_action s;
  Memo.Stats.end_episode s;
  check Alcotest.int "one episode" 1 s.Memo.Stats.episodes;
  check Alcotest.int "chain max" 3 s.Memo.Stats.chain_max;
  (* double-ending (divergence path followed by halt path) must not
     inflate episodes or corrupt chain_max *)
  Memo.Stats.end_episode s;
  Memo.Stats.end_episode s;
  check Alcotest.int "still one episode" 1 s.Memo.Stats.episodes;
  check Alcotest.int "chain max intact" 3 s.Memo.Stats.chain_max;
  Memo.Stats.note_action s;
  Memo.Stats.end_episode s;
  check Alcotest.int "second episode" 2 s.Memo.Stats.episodes;
  check Alcotest.int "chain max unchanged by shorter chain" 3
    s.Memo.Stats.chain_max;
  check (Alcotest.float 1e-9) "avg chain = (3+1)/2" 2.
    (Memo.Stats.avg_chain s);
  check Alcotest.int "actions total" 4 s.Memo.Stats.actions_replayed

let suite =
  [ Alcotest.test_case "intern dedup" `Quick test_intern_dedup;
    Alcotest.test_case "merge and graft" `Quick test_merge_and_graft;
    Alcotest.test_case "silent mismatch violation" `Quick
      test_determinism_violation;
    Alcotest.test_case "kind mismatch violation" `Quick
      test_kind_mismatch_violation;
    Alcotest.test_case "unbounded policy" `Quick
      test_unbounded_keeps_everything;
    Alcotest.test_case "flush on full" `Quick test_flush_on_full;
    Alcotest.test_case "copying gc keeps touched" `Quick
      test_copying_gc_keeps_touched;
    Alcotest.test_case "generational promotion" `Quick
      test_generational_promotion;
    Alcotest.test_case "goto healing" `Quick test_resolve_goto_heals;
    Alcotest.test_case "modeled action sizes" `Quick test_node_bytes;
    Alcotest.test_case "end_episode double-end guard" `Quick
      test_stats_end_episode_guard ]
