(* The SimpleScalar-style baseline: functional correctness of its in-loop
   execution, in-order commit, and squash/recovery. *)

let check = Alcotest.check

(* Functional commit-order trace: step the emulator directly, rolling back
   each misprediction as soon as it appears, so the address stream is the
   architectural path. *)
let functional_trace prog limit =
  let emu = Emu.Emulator.create ~read_ahead:false
      ~predictor:(Bpred.standard ~prog ()) prog
  in
  let out = ref [] and n = ref 0 in
  let rec go () =
    if !n >= limit then Alcotest.fail "functional trace too long"
    else begin
      let before = Emu.Emulator.outstanding emu in
      let s = Emu.Emulator.step_one emu in
      match s.Emu.Emulator.s_event with
      | Some (Emu.Emulator.Halted _) -> ()
      | _ ->
        out := s.Emu.Emulator.s_addr :: !out;
        incr n;
        (* a fresh checkpoint = this branch was mispredicted; repair it
           immediately so we stay on the architectural path *)
        if Emu.Emulator.outstanding emu > before then
          ignore
            (Emu.Emulator.rollback_to emu
               ~index:(Emu.Emulator.outstanding emu - 1)
              : int);
        go ()
    end
  in
  go ();
  List.rev !out

let test_commit_stream_matches_functional () =
  List.iter
    (fun name ->
      let w = Workloads.Suite.find name in
      let prog = w.Workloads.Workload.build w.Workloads.Workload.test_scale in
      let expected = functional_trace prog 3_000_000 in
      let committed = Baseline.run_trace prog in
      check Alcotest.int
        (name ^ " trace length")
        (List.length expected) (List.length committed);
      List.iter2
        (fun a b ->
          if a <> b then
            Alcotest.failf "%s: commit trace diverges: 0x%x vs 0x%x" name a b)
        expected committed)
    [ "go"; "m88ksim"; "li" ]

let test_final_state_matches_functional () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let prog = w.build w.test_scale in
      let st, _, n = Fastsim.Sim.functional prog in
      let b = Baseline.run prog in
      check Alcotest.int (w.name ^ " retired") (n + 1) b.Baseline.retired;
      check Alcotest.bool (w.name ^ " final state") true
        (Emu.Arch_state.equal st b.Baseline.final_state))
    Workloads.Suite.all

let test_determinism () =
  let w = Workloads.Suite.find "perl" in
  let prog = w.Workloads.Workload.build 3 in
  let a = Baseline.run prog in
  let b = Baseline.run prog in
  check Alcotest.int "cycles" a.Baseline.cycles b.Baseline.cycles;
  check Alcotest.int "mispredicts" a.Baseline.mispredicts
    b.Baseline.mispredicts

let test_small_ruu_still_correct () =
  let w = Workloads.Suite.find "compress" in
  let prog = w.Workloads.Workload.build 1 in
  let st, _, n = Fastsim.Sim.functional prog in
  let b = Baseline.run ~ruu_size:8 ~lsq_size:4 ~fetch_width:2 prog in
  check Alcotest.int "retired" (n + 1) b.Baseline.retired;
  check Alcotest.bool "state" true
    (Emu.Arch_state.equal st b.Baseline.final_state)

let random_baseline_prop =
  QCheck.Test.make ~name:"baseline state == functional on random programs"
    ~count:15
    QCheck.(int_bound 100_000)
    (fun seed ->
      let prog =
        Gen.program_of_seed
          ~cfg:{ Gen.default_cfg with outer_iters = 2; inner_iters = 5 }
          seed
      in
      let st, _, n = Fastsim.Sim.functional prog in
      let b = Baseline.run prog in
      b.Baseline.retired = n + 1
      && Emu.Arch_state.equal st b.Baseline.final_state)

(* --- the in-order approximation strawman --- *)

let test_inorder_counts () =
  let w = Workloads.Suite.find "li" in
  let prog = w.Workloads.Workload.build w.Workloads.Workload.test_scale in
  let _, _, n = Fastsim.Sim.functional prog in
  let a = Baseline.Inorder.run prog in
  check Alcotest.int "retires the architectural path" n a.Baseline.Inorder.retired;
  (* single-issue: at least one cycle per instruction *)
  check Alcotest.bool "cycles >= insts" true (a.Baseline.Inorder.cycles >= n);
  let b = Baseline.Inorder.run prog in
  check Alcotest.int "deterministic" a.Baseline.Inorder.cycles
    b.Baseline.Inorder.cycles

let test_inorder_error_varies () =
  (* the approximation's error relative to the cycle-accurate model is not
     a constant factor across workloads (Pai et al.) *)
  let ratio name =
    let w = Workloads.Suite.find name in
    let prog = w.Workloads.Workload.build w.Workloads.Workload.test_scale in
    let ooo = Fastsim.Sim.run ~engine:`Slow Fastsim.Sim.Spec.default prog in
    let a = Baseline.Inorder.run prog in
    float_of_int a.Baseline.Inorder.cycles
    /. float_of_int ooo.Fastsim.Sim.cycles
  in
  let r1 = ratio "hydro2d" and r2 = ratio "li" in
  check Alcotest.bool "in-order always slower" true (r1 > 1.0 && r2 > 1.0);
  check Alcotest.bool "error is workload-dependent" true
    (Float.abs (r1 -. r2) > 0.3)


let suite =
  [ Alcotest.test_case "commit stream matches functional" `Quick
      test_commit_stream_matches_functional;
    Alcotest.test_case "final state matches functional (all kernels)"
      `Quick test_final_state_matches_functional;
    Alcotest.test_case "deterministic" `Quick test_determinism;
    Alcotest.test_case "small RUU still correct" `Quick
      test_small_ruu_still_correct;
    QCheck_alcotest.to_alcotest random_baseline_prop;
    Alcotest.test_case "in-order approximation counts" `Quick
      test_inorder_counts;
    Alcotest.test_case "in-order error varies by workload" `Quick
      test_inorder_error_varies ]

