(* Cache hierarchy timing model: hits, misses, LRU, MSHR merging, bus
   contention, write-through/write-back behaviour. *)

let check = Alcotest.check

let cfg = Cachesim.Config.default

let test_l1_hit_after_fill () =
  let c = Cachesim.Hierarchy.create () in
  let miss = Cachesim.Hierarchy.load c ~now:0 ~addr:0x1000 in
  check Alcotest.bool "cold miss is slow" true (miss > cfg.l1_hit_latency);
  (* after the fill completes, the same line hits *)
  let hit = Cachesim.Hierarchy.load c ~now:(miss + 1) ~addr:0x1004 in
  check Alcotest.int "hit latency" cfg.l1_hit_latency hit;
  let s = Cachesim.Hierarchy.stats c in
  check Alcotest.int "1 miss" 1 s.l1_misses;
  check Alcotest.int "1 hit" 1 s.l1_hits

let test_l2_hit_faster_than_memory () =
  let c = Cachesim.Hierarchy.create () in
  let mem_miss = Cachesim.Hierarchy.load c ~now:0 ~addr:0x10000 in
  (* evict from L1 but not from the much larger L2: touch enough lines
     mapping to the same L1 set. L1 16KB 2-way: stride = 8KB *)
  let t = ref (mem_miss + 10) in
  List.iter
    (fun k ->
      let lat =
        Cachesim.Hierarchy.load c ~now:!t ~addr:(0x10000 + (k * 8192))
      in
      t := !t + lat + 5)
    [ 1; 2 ];
  let l2_hit = Cachesim.Hierarchy.load c ~now:!t ~addr:0x10000 in
  check Alcotest.bool "L2 hit beats memory" true (l2_hit < mem_miss);
  check Alcotest.bool "L2 hit slower than L1" true
    (l2_hit > cfg.l1_hit_latency)

let test_mshr_merge () =
  let c = Cachesim.Hierarchy.create () in
  let first = Cachesim.Hierarchy.load c ~now:0 ~addr:0x2000 in
  (* a second load to the same line while the fill is outstanding merges *)
  let second = Cachesim.Hierarchy.load c ~now:1 ~addr:0x2008 in
  check Alcotest.int "merged completion" (first - 1) second;
  let s = Cachesim.Hierarchy.stats c in
  check Alcotest.int "merge counted" 1 s.merged_misses

let test_bus_contention () =
  let c = Cachesim.Hierarchy.create () in
  (* two misses to different lines at the same time: the second's data
     transfer queues behind the first's *)
  let a = Cachesim.Hierarchy.load c ~now:0 ~addr:0x3000 in
  let b = Cachesim.Hierarchy.load c ~now:0 ~addr:0x4000 in
  check Alcotest.bool "second delayed" true (b > a)

let test_lru_eviction () =
  let tiny = Cachesim.Config.tiny in
  (* L1: 256 B, 2-way, 32 B lines -> 4 sets; same set stride = 128 B *)
  let c = Cachesim.Hierarchy.create ~config:tiny () in
  let t = ref 0 in
  let access addr =
    let lat = Cachesim.Hierarchy.load c ~now:!t ~addr in
    t := !t + lat + 2;
    lat
  in
  ignore (access 0x0000 : int);   (* miss: way 0 *)
  ignore (access 0x0080 : int);   (* miss: way 1 *)
  ignore (access 0x0000 : int);   (* hit: refresh LRU of way 0 *)
  ignore (access 0x0100 : int);   (* miss: evicts 0x80, the LRU *)
  let hit = access 0x0000 in
  check Alcotest.int "0x0 still resident" tiny.l1_hit_latency hit;
  let miss = access 0x0080 in
  check Alcotest.bool "0x80 was evicted" true (miss > tiny.l1_hit_latency)

let test_write_through_traffic () =
  let c = Cachesim.Hierarchy.create () in
  (* stores reach the L2 even on L1 hits *)
  let lat = Cachesim.Hierarchy.load c ~now:0 ~addr:0x5000 in
  Cachesim.Hierarchy.store c ~now:(lat + 1) ~addr:0x5000;
  let s = Cachesim.Hierarchy.stats c in
  check Alcotest.int "store counted" 1 s.stores;
  check Alcotest.bool "L2 sees the write" true (s.l2_hits >= 1)

let test_writeback_on_dirty_eviction () =
  let tiny = Cachesim.Config.tiny in
  (* L2: 4 KB, 2-way, 32 B lines -> 64 sets; same-set stride 2 KB *)
  let c = Cachesim.Hierarchy.create ~config:tiny () in
  Cachesim.Hierarchy.store c ~now:0 ~addr:0x0;  (* dirties an L2 line *)
  let t = ref 100 in
  (* force eviction of that L2 set with three more lines *)
  List.iter
    (fun k ->
      let lat = Cachesim.Hierarchy.load c ~now:!t ~addr:(k * 2048) in
      t := !t + lat + 2)
    [ 1; 2; 3 ];
  let s = Cachesim.Hierarchy.stats c in
  check Alcotest.bool "a write-back happened" true (s.writebacks >= 1)

let test_determinism () =
  let run () =
    let c = Cachesim.Hierarchy.create () in
    let t = ref 0 in
    let out = ref [] in
    List.iter
      (fun (addr : int) ->
        let lat = Cachesim.Hierarchy.load c ~now:!t ~addr in
        out := lat :: !out;
        t := !t + 3)
      (List.init 200 (fun i -> (i * 1337 * 64) land 0xfffff));
    !out
  in
  check (Alcotest.list Alcotest.int) "same latencies" (run ()) (run ())

let test_reset_stats () =
  let c = Cachesim.Hierarchy.create () in
  ignore (Cachesim.Hierarchy.load c ~now:0 ~addr:0 : int);
  Cachesim.Hierarchy.reset_stats c;
  let s = Cachesim.Hierarchy.stats c in
  check Alcotest.int "cleared" 0 (s.loads + s.l1_misses)

let monotonic_prop =
  QCheck.Test.make ~name:"latencies are positive and bounded" ~count:200
    QCheck.(pair (int_bound 0xffff) (int_bound 1000))
    (fun (a, now) ->
      let c = Cachesim.Hierarchy.create () in
      let lat = Cachesim.Hierarchy.load c ~now ~addr:(a * 4) in
      lat >= 1 && lat < 10_000)

(* Model-based property: the tag array must behave exactly like a
   reference implementation built on association lists. *)
let setassoc_model_prop =
  QCheck.Test.make ~name:"setassoc matches reference LRU model" ~count:300
    QCheck.(list (pair (int_bound 63) bool))
    (fun ops ->
      (* 4 sets x 2 ways of 32 B lines; addresses = line_index * 32 *)
      let sut = Cachesim.Setassoc.create ~size:256 ~ways:2 ~line:32 in
      (* reference: per set, a most-recent-first list of tags, max 2 *)
      let model = Array.make 4 [] in
      let ok = ref true in
      List.iter
        (fun (line_idx, is_fill) ->
          let addr = line_idx * 32 in
          let set = line_idx land 3 in
          let present = List.mem line_idx model.(set) in
          if is_fill then begin
            if not present then begin
              ignore
                (Cachesim.Setassoc.fill sut addr ~dirty:false
                  : Cachesim.Setassoc.fill_result);
              model.(set) <-
                line_idx
                :: (if List.length model.(set) >= 2 then
                      [ List.hd model.(set) ]
                    else model.(set))
            end
          end
          else begin
            let hit = Cachesim.Setassoc.touch sut addr in
            if hit <> present then ok := false;
            if present then
              model.(set) <-
                line_idx :: List.filter (fun t -> t <> line_idx) model.(set)
          end)
        ops;
      !ok)

let test_l2_wide_lines () =
  (* with 128 B L2 lines, four different 32 B L1 lines inside one L2 line
     miss L1 but hit L2 after the first fill *)
  let c = Cachesim.Hierarchy.create () in
  let first = Cachesim.Hierarchy.load c ~now:0 ~addr:0x20000 in
  let t = ref (first + 4) in
  List.iter
    (fun off ->
      let lat = Cachesim.Hierarchy.load c ~now:!t ~addr:(0x20000 + off) in
      check Alcotest.bool
        (Printf.sprintf "offset %d is an L2 hit" off)
        true
        (lat > cfg.l1_hit_latency && lat < first);
      t := !t + lat + 4)
    [ 32; 64; 96 ];
  let s = Cachesim.Hierarchy.stats c in
  check Alcotest.int "one memory access" 1 s.l2_misses;
  check Alcotest.int "three L2 hits" 3 s.l2_hits

let suite =
  [ Alcotest.test_case "L1 hit after fill" `Quick test_l1_hit_after_fill;
    Alcotest.test_case "L2 vs memory" `Quick test_l2_hit_faster_than_memory;
    Alcotest.test_case "MSHR merge" `Quick test_mshr_merge;
    Alcotest.test_case "bus contention" `Quick test_bus_contention;
    Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
    Alcotest.test_case "write-through traffic" `Quick
      test_write_through_traffic;
    Alcotest.test_case "write-back on dirty eviction" `Quick
      test_writeback_on_dirty_eviction;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "reset stats" `Quick test_reset_stats;
    QCheck_alcotest.to_alcotest monotonic_prop;
    QCheck_alcotest.to_alcotest setassoc_model_prop;
    Alcotest.test_case "L2 wide lines" `Quick test_l2_wide_lines ]


