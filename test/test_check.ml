(* Fastsim_check: the differential fuzzing harness itself, plus the
   memoization edge cases it was built to pin down — the max_cycles
   truncation boundary and the dedicated action-equality functions. *)

module Check = Fastsim_check
module Sim = Fastsim.Sim

let check = Alcotest.check

(* ---- generator ---- *)

let gen_text seed =
  let st = Random.State.make [| seed |] in
  Check.Prog.render (Check.Generate.program ~bias:Check.Bias.quick st)

let test_generator_deterministic () =
  check Alcotest.string "same seed, same program" (gen_text 12) (gen_text 12);
  check Alcotest.bool "different seed, different program" true
    (gen_text 12 <> gen_text 13)

let test_generator_roundtrips () =
  for seed = 0 to 19 do
    let st = Random.State.make [| seed |] in
    let p = Check.Generate.program ~bias:Check.Bias.default st in
    check Alcotest.bool
      (Printf.sprintf "seed %d renders to re-parseable assembly" seed)
      true
      (Check.Prog.roundtrips p)
  done

let test_generated_programs_halt () =
  (* Every generated program must halt on its own well before the
     oracle's safety budget: run the slow engine and demand an
     untruncated result. *)
  for seed = 0 to 9 do
    let st = Random.State.make [| seed |] in
    let p = Check.Generate.program ~bias:Check.Bias.quick st in
    let r =
      Sim.run ~engine:`Slow
        (Sim.Spec.with_max_cycles 400_000 Sim.Spec.default)
        (Check.Prog.assemble p)
    in
    check Alcotest.bool (Printf.sprintf "seed %d halts" seed) false
      r.Sim.truncated
  done

(* ---- action equality ---- *)

let test_ctl_equal () =
  let open Memo.Action in
  let c1 = Uarch.Oracle.C_cond { taken = true; mispredicted = false } in
  let c2 = Uarch.Oracle.C_cond { taken = true; mispredicted = false } in
  let c3 = Uarch.Oracle.C_cond { taken = true; mispredicted = true } in
  let i1 = Uarch.Oracle.C_indirect { target = 0x10040; hit = true } in
  let i2 = Uarch.Oracle.C_indirect { target = 0x10040; hit = true } in
  let i3 = Uarch.Oracle.C_indirect { target = 0x10044; hit = true } in
  check Alcotest.bool "equal conds" true (ctl_equal c1 c2);
  check Alcotest.bool "mispredict flag distinguishes" false (ctl_equal c1 c3);
  check Alcotest.bool "equal indirects" true (ctl_equal i1 i2);
  check Alcotest.bool "target distinguishes" false (ctl_equal i1 i3);
  check Alcotest.bool "cond <> indirect" false (ctl_equal c1 i1);
  check Alcotest.bool "stalled = stalled" true
    (ctl_equal Uarch.Oracle.C_stalled Uarch.Oracle.C_stalled);
  check Alcotest.bool "items: loads by latency" true
    (item_equal (I_load 3) (I_load 3));
  check Alcotest.bool "items: latency distinguishes" false
    (item_equal (I_load 3) (I_load 4));
  check Alcotest.bool "items: store = store" true (item_equal I_store I_store);
  check Alcotest.bool "items: ctl payload compared structurally" true
    (item_equal (I_ctl i1) (I_ctl i2));
  check Alcotest.bool "items: rollback index" false
    (item_equal (I_rollback 0) (I_rollback 1));
  (* edge lookup uses the same equality *)
  let n = N_halt in
  check Alcotest.bool "ctl_edge finds structural match" true
    (ctl_edge i2 [ (c3, n); (i1, n) ] <> None);
  check Alcotest.bool "ctl_edge misses different outcome" true
    (ctl_edge i3 [ (c3, n); (i1, n) ] = None);
  check Alcotest.bool "load_edge by latency" true
    (load_edge 7 [ (3, n); (7, n) ] <> None && load_edge 9 [ (3, n) ] = None)

(* ---- max_cycles truncation boundary (the replay-budget bugfix) ---- *)

(* Sweep a window of consecutive budgets spanning many replay-group
   boundaries, under every replacement policy: fast and slow must agree
   on every statistic at every single truncation point. *)
let test_truncation_boundary_property () =
  let st = Random.State.make [| 2026 |] in
  let prog =
    Check.Prog.assemble (Check.Generate.program ~bias:Check.Bias.quick st)
  in
  let full = Sim.run ~engine:`Slow Sim.Spec.default prog in
  check Alcotest.bool "program runs long enough for the sweep" true
    (full.Sim.cycles > 120);
  let lo = (full.Sim.cycles / 2) - 20 in
  let policies =
    [ Memo.Pcache.Unbounded;
      Memo.Pcache.Flush_on_full 8_192;
      Memo.Pcache.Copying_gc 8_192;
      Memo.Pcache.Generational_gc { nursery = 2_048; total = 8_192 } ]
  in
  List.iter
    (fun policy ->
      let spec = Sim.Spec.with_policy policy Sim.Spec.default in
      for budget = lo to lo + 40 do
        let tspec = Sim.Spec.with_max_cycles budget spec in
        let s = Sim.run ~engine:`Slow tspec prog in
        let f = Sim.run ~engine:`Fast tspec prog in
        let tag fmt =
          Printf.sprintf "%s@%d %s"
            (Sim.Spec.policy_to_string policy)
            budget fmt
        in
        check Alcotest.bool (tag "truncated") true
          (s.Sim.truncated && f.Sim.truncated);
        check Alcotest.int (tag "cycles stop at the budget") budget
          s.Sim.cycles;
        check Alcotest.int (tag "cycles") s.Sim.cycles f.Sim.cycles;
        check Alcotest.int (tag "retired") s.Sim.retired f.Sim.retired;
        check
          Alcotest.(array int)
          (tag "retired_by_class") s.Sim.retired_by_class
          f.Sim.retired_by_class;
        check Alcotest.int (tag "wrong_path") s.Sim.wrong_path_insts
          f.Sim.wrong_path_insts;
        check Alcotest.bool (tag "cache stats") true
          (s.Sim.cache = f.Sim.cache)
      done)
    policies

(* ---- the oracle end-to-end ---- *)

let test_mini_fuzz_campaign_agrees () =
  let config =
    { Check.Fuzz.default_config with
      Check.Fuzz.seed = 5;
      cases = 6;
      bias = Check.Bias.quick;
      backend = Fastsim_exec.Pool.Inline;
      out_dir = Filename.concat (Filename.get_temp_dir_name ()) "fuzz_mini" }
  in
  let s = Check.Fuzz.run config in
  check Alcotest.int "all cases agree" 6 s.Check.Fuzz.agreed;
  check Alcotest.int "no failures" 0 (List.length s.Check.Fuzz.failures)

let test_injected_fault_caught_and_shrunk () =
  let out_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fuzz_fault_%d" (Unix.getpid ()))
  in
  Unix.putenv "FASTSIM_REPLAY_FAULT_EVERY" "10";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "FASTSIM_REPLAY_FAULT_EVERY" "")
    (fun () ->
      let config =
        { Check.Fuzz.default_config with
          Check.Fuzz.seed = 42;
          cases = 3;
          bias = Check.Bias.quick;
          backend = Fastsim_exec.Pool.Inline;
          out_dir }
      in
      let s = Check.Fuzz.run config in
      check Alcotest.bool "fault detected" true
        (s.Check.Fuzz.failures <> []);
      List.iter
        (fun (f : Check.Fuzz.failure) ->
          (match f.Check.Fuzz.f_min_insns with
           | Some n ->
             check Alcotest.bool "shrunk to a small reproducer" true (n <= 30)
           | None -> Alcotest.fail "expected a minimized reproducer");
          match f.Check.Fuzz.f_min_source with
          | Some path ->
            (* the reproducer must itself be parseable assembly *)
            let ic = open_in path in
            let len = in_channel_length ic in
            let text = really_input_string ic len in
            close_in ic;
            ignore (Isa.Parse.program text : Isa.Program.t)
          | None -> Alcotest.fail "expected a .min.s file")
        s.Check.Fuzz.failures)

let suite =
  [ Alcotest.test_case "generator is deterministic" `Quick
      test_generator_deterministic;
    Alcotest.test_case "generated programs round-trip through the parser"
      `Quick test_generator_roundtrips;
    Alcotest.test_case "generated programs halt" `Quick
      test_generated_programs_halt;
    Alcotest.test_case "ctl/item equality and edge lookup" `Quick
      test_ctl_equal;
    Alcotest.test_case "fast = slow at every truncation point, all policies"
      `Slow test_truncation_boundary_property;
    Alcotest.test_case "mini fuzz campaign: zero divergences" `Slow
      test_mini_fuzz_campaign_agrees;
    Alcotest.test_case "injected replay fault is caught and shrunk" `Slow
      test_injected_fault_caught_and_shrunk ]
