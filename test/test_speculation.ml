(* Directed stress tests for nested speculation: multiple outstanding
   mispredictions, out-of-order resolution, rollback-within-rollback.
   This is the bQ machinery of paper §3.2 under its worst cases. *)

let check = Alcotest.check

(* Program with two nested mispredictions where the YOUNGER branch's
   operands are ready first, so the pipeline resolves it before the older
   one (rollback index 1, then index 0):

   - b1 depends on a load (slow to resolve), mispredicted.
   - b1's wrong path contains b2, which depends on immediates (fast),
     also mispredicted.  *)
let nested_prog =
  Workloads.Dsl.(
    assemble
      [ data "flag" [ Words [ 1 ] ];
        data "out" [ Words [ 0; 0; 0 ] ];
        la 1 "flag";
        la 2 "out";
        li 20 0;
        lw 3 1 0;              (* r3 = 1, slowly *)
        bne 3 0 "b1_taken";    (* taken; predicted not-taken: mispredict 1 *)
        (* wrong path of b1 *)
        li 4 1;
        beq 4 4 "b2_taken";    (* taken; predicted not-taken: mispredict 2 *)
        (* wrong-wrong path: poison everything *)
        li 20 999;
        sw 20 2 0;
        label "b2_taken";
        li 21 777;             (* still wrong path of b1 *)
        sw 21 2 4;
        j "end_";
        label "b1_taken";
        addi 20 20 5;
        sw 20 2 8;
        label "end_";
        halt ])

let test_nested_rollback_functional () =
  (* the emulator itself: both wrong paths fully undone *)
  let st, mem, _ = Emu.Emulator.run_functional nested_prog in
  ignore st;
  let out = Isa.Program.symbol nested_prog "out" in
  check Alcotest.int "wrong-wrong store undone" 0 (Emu.Memory.load32 mem out);
  check Alcotest.int "wrong store undone" 0 (Emu.Memory.load32 mem (out + 4));
  check Alcotest.int "correct store" 5 (Emu.Memory.load32 mem (out + 8))

let run_slow prog = Fastsim.Sim.run ~engine:`Slow Fastsim.Sim.Spec.default prog
let run_fast prog = Fastsim.Sim.run ~engine:`Fast Fastsim.Sim.Spec.default prog

let test_nested_rollback_all_engines () =
  let slow = run_slow nested_prog in
  let fast = run_fast nested_prog in
  let base = Baseline.run nested_prog in
  check Alcotest.int "slow = fast cycles" slow.Fastsim.Sim.cycles
    fast.Fastsim.Sim.cycles;
  check Alcotest.int "r20 slow" 5
    (Emu.Arch_state.get_i slow.Fastsim.Sim.final_state 20);
  check Alcotest.int "r20 fast" 5
    (Emu.Arch_state.get_i fast.Fastsim.Sim.final_state 20);
  check Alcotest.int "r20 baseline" 5
    (Emu.Arch_state.get_i base.Baseline.final_state 20);
  (* both engines executed (and rolled back) wrong-path work *)
  check Alcotest.bool "wrong path happened" true
    (slow.Fastsim.Sim.wrong_path_insts > 0)

(* Resolve-younger-first at the emulator API level. *)
let test_out_of_order_resolution () =
  let emu = Emu.Emulator.create nested_prog in
  (* pull both branch events *)
  (match Emu.Emulator.next_event emu with
   | Emu.Emulator.Cond { taken = true; predicted_taken = false; _ } -> ()
   | _ -> Alcotest.fail "b1 event");
  (match Emu.Emulator.next_event emu with
   | Emu.Emulator.Cond { taken = true; predicted_taken = false; _ } -> ()
   | _ -> Alcotest.fail "b2 event");
  check Alcotest.int "two checkpoints" 2 (Emu.Emulator.outstanding emu);
  (* resolve the YOUNGER first (index 1) *)
  let pc2 = Emu.Emulator.rollback_to emu ~index:1 in
  check Alcotest.int "b2 corrected to b2_taken"
    (Isa.Program.symbol nested_prog "b2_taken") pc2;
  check Alcotest.int "older checkpoint remains" 1
    (Emu.Emulator.outstanding emu);
  (* now the older one (index 0): must also unwind b2's post-rollback work *)
  let pc1 = Emu.Emulator.rollback_to emu ~index:0 in
  check Alcotest.int "b1 corrected to b1_taken"
    (Isa.Program.symbol nested_prog "b1_taken") pc1;
  check Alcotest.int "no checkpoints" 0 (Emu.Emulator.outstanding emu);
  let out = Isa.Program.symbol nested_prog "out" in
  check Alcotest.int "all wrong stores undone" 0
    (Emu.Memory.load32 (Emu.Emulator.memory emu) (out + 4))

(* Resolving the OLDER first discards the younger checkpoint wholesale. *)
let test_older_first_discards_younger () =
  let emu = Emu.Emulator.create nested_prog in
  ignore (Emu.Emulator.next_event emu : Emu.Emulator.control);
  ignore (Emu.Emulator.next_event emu : Emu.Emulator.control);
  check Alcotest.int "two checkpoints" 2 (Emu.Emulator.outstanding emu);
  let pc1 = Emu.Emulator.rollback_to emu ~index:0 in
  check Alcotest.int "corrected to b1_taken"
    (Isa.Program.symbol nested_prog "b1_taken") pc1;
  check Alcotest.int "younger checkpoint discarded too" 0
    (Emu.Emulator.outstanding emu)

(* Deep speculation: a chain of mispredicted branches up to the model's
   limit; the µ-architecture must stall fetch at 4 and still finish. *)
let deep_prog =
  Workloads.Dsl.(
    assemble
      ([ data "zeros" [ Words [ 0; 0; 0; 0; 0; 0 ] ];
         la 1 "zeros";
         li 20 0 ]
      @ List.concat_map
          (fun k ->
            [ lw 2 1 (4 * k);       (* 0, slowly *)
              beq 2 0 (Printf.sprintf "t%d" k);  (* taken; mispredicted
                                                    until trained *)
              addi 20 20 100;       (* wrong path *)
              label (Printf.sprintf "t%d" k);
              addi 20 20 1 ])
          [ 0; 1; 2; 3; 4; 5 ]
      @ [ halt ]))

let test_deep_speculation () =
  let slow = run_slow deep_prog in
  let fast = run_fast deep_prog in
  check Alcotest.int "cycles equal" slow.Fastsim.Sim.cycles
    fast.Fastsim.Sim.cycles;
  check Alcotest.int "r20: only correct-path increments" 6
    (Emu.Arch_state.get_i slow.Fastsim.Sim.final_state 20)

(* A wrong path that wedges by running off the code segment. *)
let wedge_prog =
  Workloads.Dsl.(
    assemble
      [ data "one" [ Words [ 1 ] ];
        la 1 "one";
        lw 2 1 0;
        li 20 0;
        bne 2 0 "fin";   (* taken; predicted not-taken *)
        (* wrong path: compute a garbage target and jump through it *)
        li 3 0x700000;
        jr 3;
        label "fin";
        addi 20 20 9;
        halt ])

let test_wrong_path_wedges_and_recovers () =
  let slow = run_slow wedge_prog in
  let fast = run_fast wedge_prog in
  check Alcotest.int "cycles equal" slow.Fastsim.Sim.cycles
    fast.Fastsim.Sim.cycles;
  check Alcotest.int "result" 9
    (Emu.Arch_state.get_i slow.Fastsim.Sim.final_state 20)

(* Speculative stores of every width get undone byte-exactly. *)
let width_prog =
  Workloads.Dsl.(
    assemble
      [ data "buf" [ Words [ 0x11223344; 0x55667788 ] ];
        data "one" [ Words [ 1 ] ];
        la 1 "buf";
        la 2 "one";
        lw 3 2 0;
        bne 3 0 "done_";  (* taken; predicted not-taken *)
        li 4 0xff;
        sb 4 1 1;
        sh 4 1 2;
        sw 4 1 4;
        insn (I.Fcvt_if (0, 4));
        fsd 0 1 0;        (* clobbers both words *)
        label "done_";
        halt ])

let test_speculative_store_widths_undone () =
  let slow = run_slow width_prog in
  ignore slow;
  let _, mem, _ = Emu.Emulator.run_functional width_prog in
  let buf = Isa.Program.symbol width_prog "buf" in
  check Alcotest.int "word 0 intact" 0x11223344 (Emu.Memory.load32 mem buf);
  check Alcotest.int "word 1 intact" 0x55667788
    (Emu.Memory.load32 mem (buf + 4));
  (* and under the speculative engines too *)
  let fast = run_fast width_prog in
  ignore fast;
  let emu = Emu.Emulator.create width_prog in
  let rec drain () =
    match Emu.Emulator.next_event emu with
    | Emu.Emulator.Halted _ -> ()
    | Emu.Emulator.Wedged _ | Emu.Emulator.Cond _ | Emu.Emulator.Indirect _
      ->
      if Emu.Emulator.outstanding emu > 0 then
        ignore (Emu.Emulator.rollback_to emu ~index:0 : int);
      drain ()
  in
  drain ();
  check Alcotest.int "word 0 intact (speculative)" 0x11223344
    (Emu.Memory.load32 (Emu.Emulator.memory emu) buf);
  check Alcotest.int "word 1 intact (speculative)" 0x55667788
    (Emu.Memory.load32 (Emu.Emulator.memory emu) (buf + 4))

let suite =
  [ Alcotest.test_case "nested rollback (functional)" `Quick
      test_nested_rollback_functional;
    Alcotest.test_case "nested rollback (all engines)" `Quick
      test_nested_rollback_all_engines;
    Alcotest.test_case "out-of-order resolution" `Quick
      test_out_of_order_resolution;
    Alcotest.test_case "older-first discards younger" `Quick
      test_older_first_discards_younger;
    Alcotest.test_case "deep speculation" `Quick test_deep_speculation;
    Alcotest.test_case "wrong-path wedge recovery" `Quick
      test_wrong_path_wedges_and_recovers;
    Alcotest.test_case "speculative store widths undone" `Quick
      test_speculative_store_widths_undone ]
