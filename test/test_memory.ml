(* Sparse memory: widths, sign extension, alignment, program loading. *)

let check = Alcotest.check

let test_widths () =
  let m = Emu.Memory.create () in
  Emu.Memory.store32 m 0x1000 0xdeadbeef;
  check Alcotest.int "load32" (Emu.Arch_state.norm32 0xdeadbeef)
    (Emu.Memory.load32 m 0x1000);
  check Alcotest.int "load8u" 0xef (Emu.Memory.load8u m 0x1000);
  check Alcotest.int "load8 sign" (-17) (Emu.Memory.load8 m 0x1000);
  check Alcotest.int "load16u" 0xbeef (Emu.Memory.load16u m 0x1000);
  check Alcotest.int "load16 sign" (0xbeef - 0x10000)
    (Emu.Memory.load16 m 0x1000);
  Emu.Memory.store8 m 0x1001 0x7f;
  check Alcotest.int "byte patch" 0x7f (Emu.Memory.load8u m 0x1001);
  Emu.Memory.store16 m 0x2000 (-2);
  check Alcotest.int "halfword" (-2) (Emu.Memory.load16 m 0x2000);
  Emu.Memory.store64 m 0x3000 0x0102030405060708L;
  check Alcotest.int "low word of 64" 0x05060708 (Emu.Memory.load32 m 0x3000);
  check Alcotest.int "high word of 64" 0x01020304 (Emu.Memory.load32 m 0x3004)

let test_doubles () =
  let m = Emu.Memory.create () in
  Emu.Memory.store_double m 0x4000 3.14159;
  check (Alcotest.float 0.0) "double" 3.14159
    (Emu.Memory.load_double m 0x4000);
  Emu.Memory.store_double m 0x4008 (-0.0);
  check Alcotest.bool "minus zero bits" true
    (Int64.bits_of_float (Emu.Memory.load_double m 0x4008)
    = Int64.bits_of_float (-0.0))

let test_zero_fill () =
  let m = Emu.Memory.create () in
  check Alcotest.int "untouched reads zero" 0
    (Emu.Memory.load32 m 0x7fff0000);
  check Alcotest.int "one page so far" 1 (Emu.Memory.pages_allocated m)

let test_alignment () =
  let m = Emu.Memory.create () in
  let raises f =
    match f () with
    | _ -> Alcotest.fail "expected Unaligned"
    | exception Emu.Memory.Unaligned _ -> ()
  in
  raises (fun () -> Emu.Memory.load32 m 0x1002);
  raises (fun () -> Emu.Memory.load16 m 0x1001);
  raises (fun () -> Emu.Memory.load64 m 0x1004);
  raises (fun () -> Emu.Memory.store32 m 0x1001 0);
  (* bytes are always fine *)
  Emu.Memory.store8 m 0x1003 1

let test_page_boundary () =
  let m = Emu.Memory.create () in
  (* aligned accesses never straddle pages; check both sides of one *)
  Emu.Memory.store32 m 0xffc 0x11223344;
  Emu.Memory.store32 m 0x1000 0x55667788;
  check Alcotest.int "below" 0x11223344 (Emu.Memory.load32 m 0xffc);
  check Alcotest.int "above" 0x55667788 (Emu.Memory.load32 m 0x1000)

let test_init_segment () =
  let m = Emu.Memory.create () in
  Emu.Memory.init_segment m 0x100 "abc";
  check Alcotest.int "a" (Char.code 'a') (Emu.Memory.load8u m 0x100);
  check Alcotest.int "c" (Char.code 'c') (Emu.Memory.load8u m 0x102)

let test_load_program () =
  let prog =
    Isa.Asm.(assemble [ data "d" [ Words [ 42; 43 ] ]; nop; halt ])
  in
  let m = Emu.Memory.create () in
  Emu.Memory.load_program m prog;
  let d = Isa.Program.symbol prog "d" in
  check Alcotest.int "data word" 42 (Emu.Memory.load32 m d);
  check Alcotest.int "code word" (Int32.to_int (Isa.Encode.encode Isa.Instr.Nop))
    (Emu.Memory.load32 m prog.Isa.Program.code_base)

let roundtrip_prop =
  QCheck.Test.make ~name:"store32/load32 round-trip" ~count:500
    QCheck.(pair (int_bound 0xfffff) int)
    (fun (addr4, v) ->
      let m = Emu.Memory.create () in
      let addr = addr4 * 4 in
      Emu.Memory.store32 m addr v;
      Emu.Memory.load32 m addr = Emu.Arch_state.norm32 v)

let suite =
  [ Alcotest.test_case "widths and signs" `Quick test_widths;
    Alcotest.test_case "doubles" `Quick test_doubles;
    Alcotest.test_case "zero fill" `Quick test_zero_fill;
    Alcotest.test_case "alignment" `Quick test_alignment;
    Alcotest.test_case "page boundary" `Quick test_page_boundary;
    Alcotest.test_case "init segment" `Quick test_init_segment;
    Alcotest.test_case "load program" `Quick test_load_program;
    QCheck_alcotest.to_alcotest roundtrip_prop ]
