(* ISA tests: encoding round-trips, operand classification, the assembler. *)

module I = Isa.Instr

let check = Alcotest.check
let instr = Alcotest.testable I.pp I.equal

(* A generator over every instruction shape with valid fields. *)
let arbitrary_instr =
  let open QCheck in
  let reg = Gen.int_range 0 31 in
  let imm16 = Gen.int_range (-32768) 32767 in
  let uimm16 = Gen.int_range 0 65535 in
  let shamt = Gen.int_range 0 31 in
  let gen =
    Gen.oneof
      [ Gen.map3 (fun op rd (rs1, rs2) -> I.Alu (op, rd, rs1, rs2))
          (Gen.oneofl
             [ I.Add; I.Sub; I.And; I.Or; I.Xor; I.Sll; I.Srl; I.Sra;
               I.Slt; I.Sltu ])
          reg (Gen.pair reg reg);
        Gen.map3
          (fun op rd (rs1, imm, uimm, sh) ->
            let i =
              match op with
              | I.Sll | I.Srl | I.Sra -> sh
              | I.And | I.Or | I.Xor -> uimm
              | _ -> imm
            in
            I.Alui (op, rd, rs1, i))
          (Gen.oneofl
             [ I.Add; I.Sub; I.And; I.Or; I.Xor; I.Sll; I.Srl; I.Sra;
               I.Slt; I.Sltu ])
          reg
          (Gen.map (fun ((a, b), (c, d)) -> (a, b, c, d))
             (Gen.pair (Gen.pair reg imm16) (Gen.pair uimm16 shamt)));
        Gen.map2 (fun rd imm -> I.Lui (rd, imm)) reg uimm16;
        Gen.map3 (fun rd rs1 rs2 -> I.Mul (rd, rs1, rs2)) reg reg reg;
        Gen.map3 (fun rd rs1 rs2 -> I.Div (rd, rs1, rs2)) reg reg reg;
        Gen.map3 (fun rd rs1 rs2 -> I.Rem (rd, rs1, rs2)) reg reg reg;
        Gen.map3
          (fun w (rd, base) off -> I.Load (w, rd, base, off))
          (Gen.oneofl [ I.Lb; I.Lbu; I.Lh; I.Lhu; I.Lw ])
          (Gen.pair reg reg) imm16;
        Gen.map3
          (fun w (rs, base) off -> I.Store (w, rs, base, off))
          (Gen.oneofl [ I.Sb; I.Sh; I.Sw ])
          (Gen.pair reg reg) imm16;
        Gen.map3 (fun fd base off -> I.Fload (fd, base, off)) reg reg imm16;
        Gen.map3 (fun fs base off -> I.Fstore (fs, base, off)) reg reg imm16;
        Gen.map3 (fun op fd (a, b) -> I.Fop (op, fd, a, b))
          (Gen.oneofl [ I.Fadd; I.Fsub; I.Fmul; I.Fdiv; I.Fsqrt; I.Fneg;
                        I.Fabs ])
          reg (Gen.pair reg reg);
        Gen.map3 (fun op rd (a, b) -> I.Fcmp (op, rd, a, b))
          (Gen.oneofl [ I.Feq; I.Flt; I.Fle ])
          reg (Gen.pair reg reg);
        Gen.map2 (fun fd rs -> I.Fcvt_if (fd, rs)) reg reg;
        Gen.map2 (fun rd fs -> I.Fcvt_fi (rd, fs)) reg reg;
        Gen.map3 (fun c (a, b) off -> I.Branch (c, a, b, off))
          (Gen.oneofl [ I.Eq; I.Ne; I.Lt; I.Ge; I.Le; I.Gt ])
          (Gen.pair reg reg) imm16;
        Gen.map (fun t -> I.Jump t) (Gen.int_range 0 0x3ffffff);
        Gen.map2 (fun rd t -> I.Jal (rd, t)) reg (Gen.int_range 0 0x1fffff);
        Gen.map (fun rs -> I.Jr rs) reg;
        Gen.map2 (fun rd rs -> I.Jalr (rd, rs)) reg reg;
        Gen.return I.Nop;
        Gen.return I.Halt ]
  in
  QCheck.make ~print:I.to_string gen

let roundtrip_prop =
  QCheck.Test.make ~name:"encode/decode round-trip" ~count:2000
    arbitrary_instr (fun i -> I.equal (Isa.Encode.decode (Isa.Encode.encode i)) i)

let test_roundtrip_cases () =
  List.iter
    (fun i -> check instr (I.to_string i) i (Isa.Encode.decode (Isa.Encode.encode i)))
    [ I.Alu (I.Add, 1, 2, 3);
      I.Alui (I.Sra, 31, 0, 31);
      I.Alui (I.Or, 7, 7, 0xffff);
      I.Alui (I.Add, 1, 2, -32768);
      I.Lui (5, 0xffff);
      I.Load (I.Lb, 1, 2, -1);
      I.Store (I.Sw, 1, 2, 32767);
      I.Fload (31, 30, -32768);
      I.Fop (I.Fsqrt, 0, 1, 1);
      I.Fcmp (I.Fle, 9, 10, 11);
      I.Branch (I.Gt, 1, 2, -100);
      I.Jump 0x3ffffff;
      I.Jal (31, 0x1fffff);
      I.Jalr (1, 2);
      I.Nop;
      I.Halt ]

let test_encode_errors () =
  let raises i =
    match Isa.Encode.encode i with
    | _ -> Alcotest.failf "expected Encode_error for %s" (I.to_string i)
    | exception Isa.Encode.Encode_error _ -> ()
  in
  raises (I.Alui (I.Add, 1, 2, 40000));
  raises (I.Alui (I.Sll, 1, 2, 32));
  raises (I.Alui (I.Or, 1, 2, -1));
  raises (I.Load (I.Lw, 1, 2, 32768));
  raises (I.Alu (I.Add, 32, 0, 0));
  raises (I.Jump 0x4000000);
  Alcotest.(check bool) "encodable" false (Isa.Encode.encodable (I.Jump (-1)));
  Alcotest.(check bool) "encodable ok" true (Isa.Encode.encodable I.Nop)

let test_decode_errors () =
  match Isa.Encode.decode 0xffffffffl with
  | _ -> Alcotest.fail "expected Decode_error"
  | exception Isa.Encode.Decode_error _ -> ()

let test_classification () =
  check Alcotest.bool "load" true (I.is_load (I.Load (I.Lw, 1, 2, 0)));
  check Alcotest.bool "fload" true (I.is_load (I.Fload (1, 2, 0)));
  check Alcotest.bool "store" true (I.is_store (I.Fstore (1, 2, 0)));
  (match I.control (I.Branch (I.Eq, 1, 2, 5)) with
   | I.Ctl_cond -> ()
   | _ -> Alcotest.fail "branch is Ctl_cond");
  (match I.control (I.Jump 0x100) with
   | I.Ctl_direct a -> check Alcotest.int "target" 0x400 a
   | _ -> Alcotest.fail "jump is Ctl_direct");
  (match I.control (I.Jr 31) with
   | I.Ctl_indirect -> ()
   | _ -> Alcotest.fail "jr is Ctl_indirect");
  (match I.control I.Halt with
   | I.Ctl_halt -> ()
   | _ -> Alcotest.fail "halt");
  check Alcotest.int "fu latency div" 34 I.(latency Fu_int_div);
  check Alcotest.int "fu latency alu" 1 I.(latency Fu_int_alu)

let test_operands () =
  (* r0 never appears as a dest or source *)
  (match I.dest (I.Alu (I.Add, 0, 1, 2)) with
   | None -> ()
   | Some _ -> Alcotest.fail "write to r0 is discarded");
  check Alcotest.int "r0 sources dropped" 0
    (List.length (I.sources (I.Alu (I.Add, 1, 0, 0))));
  check Alcotest.int "store sources" 2
    (List.length (I.sources (I.Store (I.Sw, 3, 4, 0))));
  (match I.dest (I.Fop (I.Fadd, 0, 1, 2)) with
   | Some (I.Dfloat 0) -> ()
   | _ -> Alcotest.fail "fp dest");
  (match I.branch_targets (I.Branch (I.Eq, 1, 2, 3)) ~pc:0x1000 with
   | Some (fall, target) ->
     check Alcotest.int "fall" 0x1004 fall;
     check Alcotest.int "target" 0x1010 target
   | None -> Alcotest.fail "branch targets")

let test_asm_basic () =
  let prog =
    Isa.Asm.(
      assemble
        [ data "tbl" [ Words [ 1; 2; 3 ] ];
          la 1 "tbl";
          li 2 70000;
          li 3 5;
          label "top";
          insn (I.Alui (I.Add, 3, 3, -1));
          bgt 3 0 "top";
          halt ])
  in
  check Alcotest.int "code size" 8 (Isa.Program.size prog);
  (* li 70000 expands to two instructions; li 5 to one *)
  (match Isa.Program.fetch prog prog.Isa.Program.code_base with
   | I.Lui _ -> ()
   | i -> Alcotest.failf "la starts with lui, got %s" (I.to_string i));
  let tbl = Isa.Program.symbol prog "tbl" in
  check Alcotest.bool "data base" true (tbl >= Isa.Program.default_data_base)

let test_asm_branch_resolution () =
  let prog =
    Isa.Asm.(
      assemble
        [ label "start"; nop; nop; j "end_"; nop; label "end_"; halt ])
  in
  match Isa.Program.fetch prog (prog.Isa.Program.code_base + 8) with
  | I.Jump t -> check Alcotest.int "target" (prog.Isa.Program.code_base + 16) (t * 4)
  | i -> Alcotest.failf "expected jump, got %s" (I.to_string i)

let test_asm_label_word () =
  let prog =
    Isa.Asm.(
      assemble
        [ data "table" [ Label_words [ "a"; "b" ] ];
          label "a"; nop; label "b"; halt ])
  in
  let mem = Emu.Memory.create () in
  Emu.Memory.load_program mem prog;
  let table = Isa.Program.symbol prog "table" in
  check Alcotest.int "a addr" (Isa.Program.symbol prog "a")
    (Emu.Memory.load32 mem table);
  check Alcotest.int "b addr" (Isa.Program.symbol prog "b")
    (Emu.Memory.load32 mem (table + 4))

let test_asm_errors () =
  let fails stmts =
    match Isa.Asm.assemble stmts with
    | _ -> Alcotest.fail "expected Asm.Error"
    | exception Isa.Asm.Error _ -> ()
  in
  fails Isa.Asm.[ label "x"; label "x"; halt ];
  fails Isa.Asm.[ j "nowhere"; halt ];
  fails Isa.Asm.[ data "d" [ Space (-1) ]; halt ]

let test_program_fetch () =
  let prog = Isa.Asm.(assemble [ nop; halt ]) in
  let base = prog.Isa.Program.code_base in
  check instr "nop" I.Nop (Isa.Program.fetch prog base);
  check Alcotest.bool "in_code" false (Isa.Program.in_code prog (base + 12));
  check Alcotest.bool "unaligned" false (Isa.Program.in_code prog (base + 2));
  (match Isa.Program.fetch prog (base - 4) with
   | _ -> Alcotest.fail "expected Fault"
   | exception Isa.Program.Fault _ -> ());
  check Alcotest.int "last addr" (base + 4) (Isa.Program.last_addr prog)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    if i + n > String.length s then false
    else String.equal (String.sub s i n) sub || go (i + 1)
  in
  go 0

let test_listing () =
  let prog = Isa.Asm.(assemble [ nop; halt ]) in
  let s = Format.asprintf "%a" Isa.Program.pp_listing prog in
  check Alcotest.bool "mentions nop" true (contains s "nop");
  check Alcotest.bool "mentions halt" true (contains s "halt")

let suite =
  [ Alcotest.test_case "roundtrip cases" `Quick test_roundtrip_cases;
    QCheck_alcotest.to_alcotest roundtrip_prop;
    Alcotest.test_case "encode errors" `Quick test_encode_errors;
    Alcotest.test_case "decode errors" `Quick test_decode_errors;
    Alcotest.test_case "classification" `Quick test_classification;
    Alcotest.test_case "operands" `Quick test_operands;
    Alcotest.test_case "asm basics" `Quick test_asm_basic;
    Alcotest.test_case "asm branch resolution" `Quick
      test_asm_branch_resolution;
    Alcotest.test_case "asm label words" `Quick test_asm_label_word;
    Alcotest.test_case "asm errors" `Quick test_asm_errors;
    Alcotest.test_case "program fetch" `Quick test_program_fetch;
    Alcotest.test_case "listing" `Quick test_listing ]
