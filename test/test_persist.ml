(* P-action cache persistence: save/load round trips, the program digest
   guard, and warm-started simulation. *)

let check = Alcotest.check

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let run_fast ~pcache prog =
  Fastsim.Sim.run ~engine:`Fast
    Fastsim.Sim.Spec.(with_pcache pcache default)
    prog

let test_roundtrip_counters () =
  let w = Workloads.Suite.find "li" in
  let prog = w.Workloads.Workload.build w.Workloads.Workload.test_scale in
  let pc = Memo.Pcache.create () in
  let r1 = run_fast ~pcache:pc prog in
  let path = tmp "fastsim_test.fspc" in
  Memo.Persist.save_file pc ~program:prog path;
  let pc' = Memo.Persist.load_file ~program:prog path in
  let c = Memo.Pcache.counters pc and c' = Memo.Pcache.counters pc' in
  check Alcotest.int "configs survive" c.live_configs c'.live_configs;
  (* [static_actions] counts allocations over the run, not the surviving
     structure (stride compaction allocates then discards plain chains),
     so the original run's counter is not comparable. What must hold is a
     fixpoint: saving the loaded cache and loading it again changes
     nothing, i.e. one round trip already captures the exact structure. *)
  check Alcotest.int "modeled bytes survive" c.modeled_bytes c'.modeled_bytes;
  Memo.Persist.save_file pc' ~program:prog path;
  let pc'' = Memo.Persist.load_file ~program:prog path in
  let c'' = Memo.Pcache.counters pc'' in
  check Alcotest.int "reload fixpoint: configs" c'.live_configs
    c''.live_configs;
  check Alcotest.int "reload fixpoint: actions" c'.static_actions
    c''.static_actions;
  check Alcotest.int "reload fixpoint: bytes" c'.modeled_bytes
    c''.modeled_bytes;
  Sys.remove path;
  ignore r1

let test_warm_start_equivalent_and_faster () =
  let w = Workloads.Suite.find "compress" in
  let prog = w.Workloads.Workload.build 1 in
  let pc = Memo.Pcache.create () in
  let cold = run_fast ~pcache:pc prog in
  let path = tmp "fastsim_warm.fspc" in
  Memo.Persist.save_file pc ~program:prog path;
  let warm_pc = Memo.Persist.load_file ~program:prog path in
  let warm = run_fast ~pcache:warm_pc prog in
  Sys.remove path;
  (* identical results... *)
  check Alcotest.int "cycles" cold.Fastsim.Sim.cycles warm.Fastsim.Sim.cycles;
  check Alcotest.int "retired" cold.Fastsim.Sim.retired
    warm.Fastsim.Sim.retired;
  (* ...with far less detailed simulation *)
  match (cold.Fastsim.Sim.memo, warm.Fastsim.Sim.memo) with
  | Some mc, Some mw ->
    check Alcotest.bool "warm start replays more" true
      (mw.Memo.Stats.detailed_retired * 2 < mc.Memo.Stats.detailed_retired)
  | _ -> Alcotest.fail "memo stats expected"

let test_digest_guard () =
  let w = Workloads.Suite.find "li" in
  let prog = w.Workloads.Workload.build w.Workloads.Workload.test_scale in
  let other = (Workloads.Suite.find "go").build 1 in
  let pc = Memo.Pcache.create () in
  ignore (run_fast ~pcache:pc prog : Fastsim.Sim.result);
  let path = tmp "fastsim_digest.fspc" in
  Memo.Persist.save_file pc ~program:prog path;
  (match Memo.Persist.load_file ~program:other path with
   | _ -> Alcotest.fail "expected Format_error"
   | exception Memo.Persist.Format_error _ -> ());
  Sys.remove path

let test_corrupt_stream () =
  let path = tmp "fastsim_corrupt.fspc" in
  let oc = open_out_bin path in
  output_string oc "NOTAPCACHE-----";
  close_out oc;
  let prog = (Workloads.Suite.find "li").build 1 in
  (match Memo.Persist.load_file ~program:prog path with
   | _ -> Alcotest.fail "expected Format_error"
   | exception Memo.Persist.Format_error _ -> ());
  Sys.remove path

let test_digest_distinguishes_scales () =
  let w = Workloads.Suite.find "go" in
  let d1 = Memo.Persist.program_digest (w.Workloads.Workload.build 1) in
  let d2 = Memo.Persist.program_digest (w.Workloads.Workload.build 2) in
  check Alcotest.bool "different scales, different digests" true (d1 <> d2);
  let d1' = Memo.Persist.program_digest (w.Workloads.Workload.build 1) in
  check Alcotest.string "deterministic digest" d1 d1'

(* The writer and reader must traverse action chains iteratively: a
   deep chain (e.g. from a long branchy region recorded as one group)
   must not overflow the stack on either side of the round trip. *)
let test_deep_chain_roundtrip () =
  let depth = 120_000 in
  let prog = (Workloads.Suite.find "li").build 1 in
  let pc = Memo.Pcache.create () in
  let cfg = Memo.Pcache.intern pc "deep-chain-key" in
  let chain = ref Memo.Action.N_halt in
  for i = 1 to depth do
    chain :=
      if i mod 5 = 0 then
        Memo.Action.N_load { Memo.Action.l_edges = [ (2, !chain) ] }
      else Memo.Action.N_store !chain
  done;
  Memo.Pcache.install_group pc cfg ~silent:3 ~retired:7
    ~classes:[| 1; 2; 3 |] ~first:!chain;
  let path = tmp "fastsim_deep.fspc" in
  Memo.Persist.save_file pc ~program:prog path;
  let pc' = Memo.Persist.load_file ~program:prog path in
  Sys.remove path;
  let c = Memo.Pcache.counters pc and c' = Memo.Pcache.counters pc' in
  check Alcotest.int "all nodes survive" c.static_actions c'.static_actions;
  check Alcotest.int "modeled bytes survive" c.modeled_bytes c'.modeled_bytes;
  (* walk the loaded chain iteratively and confirm the depth *)
  match (Memo.Pcache.find pc' "deep-chain-key" : Memo.Action.config option)
  with
  | None -> Alcotest.fail "config lost"
  | Some cfg' ->
    (match cfg'.Memo.Action.cfg_group with
     | None -> Alcotest.fail "group lost"
     | Some g ->
       check Alcotest.int "silent cycles" 3 g.Memo.Action.g_silent;
       let n = ref 0 in
       let cur = ref (Some g.Memo.Action.g_first) in
       while !cur <> None do
         (match !cur with
          | Some (Memo.Action.N_store next) ->
            incr n;
            cur := Some next
          | Some (Memo.Action.N_load { Memo.Action.l_edges = [ (2, next) ] })
            ->
            incr n;
            cur := Some next
          | Some Memo.Action.N_halt -> cur := None
          | _ -> Alcotest.fail "unexpected node shape");
         ()
       done;
       check Alcotest.int "chain depth survives" depth !n)

(* A truncated stream must surface as Format_error (the CLI turns that
   into a diagnostic), never as a raw End_of_file leaking out of the
   reader. *)
let test_truncated_stream () =
  let w = Workloads.Suite.find "li" in
  let prog = w.Workloads.Workload.build w.Workloads.Workload.test_scale in
  let pc = Memo.Pcache.create () in
  ignore (run_fast ~pcache:pc prog : Fastsim.Sim.result);
  let path = tmp "fastsim_trunc.fspc" in
  Memo.Persist.save_file pc ~program:prog path;
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let full = really_input_string ic len in
  close_in ic;
  check Alcotest.bool "file is non-trivial" true (len > 64);
  (* cut inside the magic, the digest, the config table, and near the end *)
  [ 3; 20; len / 4; len / 2; len - 1 ]
  |> List.iter (fun cut ->
         let tpath = tmp (Printf.sprintf "fastsim_trunc_%d.fspc" cut) in
         let oc = open_out_bin tpath in
         output_string oc (String.sub full 0 cut);
         close_out oc;
         (match Memo.Persist.load_file ~program:prog tpath with
          | _ -> Alcotest.failf "cut at %d: expected Format_error" cut
          | exception Memo.Persist.Format_error _ -> ()
          | exception End_of_file ->
            Alcotest.failf "cut at %d: raw End_of_file leaked" cut);
         Sys.remove tpath);
  Sys.remove path

(* The digest covers the code words only — initial data is deliberately
   excluded (memoized actions never read data values; data-dependent
   paths diverge to detailed simulation), so a warm cache survives
   re-seeded inputs. *)
let test_digest_covers_code_only () =
  let code =
    [| Isa.Instr.Alui (Isa.Instr.Add, 2, 0, 1); Isa.Instr.Halt |]
  in
  let base = Isa.Program.default_data_base in
  let p1 = Isa.Program.make ~data:[ (base, "alpha") ] code in
  let p2 = Isa.Program.make ~data:[ (base, "omega") ] code in
  let p3 = Isa.Program.make [| Isa.Instr.Nop; Isa.Instr.Halt |] in
  check Alcotest.string "same code, different data: same digest"
    (Memo.Persist.program_digest p1)
    (Memo.Persist.program_digest p2);
  check Alcotest.bool "different code: different digest" true
    (Memo.Persist.program_digest p1 <> Memo.Persist.program_digest p3)

let suite =
  [ Alcotest.test_case "save/load round trip" `Quick test_roundtrip_counters;
    Alcotest.test_case "deep action chain survives save/load without \
                        overflowing the stack"
      `Quick test_deep_chain_roundtrip;
    Alcotest.test_case "truncated stream raises Format_error" `Quick
      test_truncated_stream;
    Alcotest.test_case "digest covers code words only" `Quick
      test_digest_covers_code_only;
    Alcotest.test_case "warm start: same results, fewer detailed insts"
      `Quick test_warm_start_equivalent_and_faster;
    Alcotest.test_case "program digest guard" `Quick test_digest_guard;
    Alcotest.test_case "corrupt stream" `Quick test_corrupt_stream;
    Alcotest.test_case "digest sensitivity" `Quick
      test_digest_distinguishes_scales ]
