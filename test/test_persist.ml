(* P-action cache persistence: save/load round trips, the program digest
   guard, and warm-started simulation. *)

let check = Alcotest.check

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let run_fast ~pcache prog =
  Fastsim.Sim.run ~engine:`Fast
    Fastsim.Sim.Spec.(with_pcache pcache default)
    prog

let test_roundtrip_counters () =
  let w = Workloads.Suite.find "li" in
  let prog = w.Workloads.Workload.build w.Workloads.Workload.test_scale in
  let pc = Memo.Pcache.create () in
  let r1 = run_fast ~pcache:pc prog in
  let path = tmp "fastsim_test.fspc" in
  Memo.Persist.Codec.save_file pc ~program:prog path;
  let pc' = Memo.Persist.Codec.load_file ~program:prog path in
  let c = Memo.Pcache.counters pc and c' = Memo.Pcache.counters pc' in
  check Alcotest.int "configs survive" c.live_configs c'.live_configs;
  (* [static_actions] counts allocations over the run, not the surviving
     structure (stride compaction allocates then discards plain chains),
     so the original run's counter is not comparable. What must hold is a
     fixpoint: saving the loaded cache and loading it again changes
     nothing, i.e. one round trip already captures the exact structure. *)
  check Alcotest.int "modeled bytes survive" c.modeled_bytes c'.modeled_bytes;
  Memo.Persist.Codec.save_file pc' ~program:prog path;
  let pc'' = Memo.Persist.Codec.load_file ~program:prog path in
  let c'' = Memo.Pcache.counters pc'' in
  check Alcotest.int "reload fixpoint: configs" c'.live_configs
    c''.live_configs;
  check Alcotest.int "reload fixpoint: actions" c'.static_actions
    c''.static_actions;
  check Alcotest.int "reload fixpoint: bytes" c'.modeled_bytes
    c''.modeled_bytes;
  Sys.remove path;
  ignore r1

let test_warm_start_equivalent_and_faster () =
  let w = Workloads.Suite.find "compress" in
  let prog = w.Workloads.Workload.build 1 in
  let pc = Memo.Pcache.create () in
  let cold = run_fast ~pcache:pc prog in
  let path = tmp "fastsim_warm.fspc" in
  Memo.Persist.Codec.save_file pc ~program:prog path;
  let warm_pc = Memo.Persist.Codec.load_file ~program:prog path in
  let warm = run_fast ~pcache:warm_pc prog in
  Sys.remove path;
  (* identical results... *)
  check Alcotest.int "cycles" cold.Fastsim.Sim.cycles warm.Fastsim.Sim.cycles;
  check Alcotest.int "retired" cold.Fastsim.Sim.retired
    warm.Fastsim.Sim.retired;
  (* ...with far less detailed simulation *)
  match (cold.Fastsim.Sim.memo, warm.Fastsim.Sim.memo) with
  | Some mc, Some mw ->
    check Alcotest.bool "warm start replays more" true
      (mw.Memo.Stats.detailed_retired * 2 < mc.Memo.Stats.detailed_retired)
  | _ -> Alcotest.fail "memo stats expected"

let test_digest_guard () =
  let w = Workloads.Suite.find "li" in
  let prog = w.Workloads.Workload.build w.Workloads.Workload.test_scale in
  let other = (Workloads.Suite.find "go").build 1 in
  let pc = Memo.Pcache.create () in
  ignore (run_fast ~pcache:pc prog : Fastsim.Sim.result);
  let path = tmp "fastsim_digest.fspc" in
  Memo.Persist.Codec.save_file pc ~program:prog path;
  (match Memo.Persist.Codec.load_file ~program:other path with
   | _ -> Alcotest.fail "expected Format_error"
   | exception Memo.Persist.Format_error _ -> ());
  Sys.remove path

let test_corrupt_stream () =
  let path = tmp "fastsim_corrupt.fspc" in
  let oc = open_out_bin path in
  output_string oc "NOTAPCACHE-----";
  close_out oc;
  let prog = (Workloads.Suite.find "li").build 1 in
  (match Memo.Persist.Codec.load_file ~program:prog path with
   | _ -> Alcotest.fail "expected Format_error"
   | exception Memo.Persist.Format_error _ -> ());
  Sys.remove path

let test_digest_distinguishes_scales () =
  let w = Workloads.Suite.find "go" in
  let d1 = Memo.Persist.program_digest (w.Workloads.Workload.build 1) in
  let d2 = Memo.Persist.program_digest (w.Workloads.Workload.build 2) in
  check Alcotest.bool "different scales, different digests" true (d1 <> d2);
  let d1' = Memo.Persist.program_digest (w.Workloads.Workload.build 1) in
  check Alcotest.string "deterministic digest" d1 d1'

(* The writer and reader must traverse action chains iteratively: a
   deep chain (e.g. from a long branchy region recorded as one group)
   must not overflow the stack on either side of the round trip. *)
let test_deep_chain_roundtrip () =
  let depth = 120_000 in
  let prog = (Workloads.Suite.find "li").build 1 in
  let pc = Memo.Pcache.create () in
  let cfg = Memo.Pcache.intern pc "deep-chain-key" in
  let chain = ref Memo.Action.N_halt in
  for i = 1 to depth do
    chain :=
      if i mod 5 = 0 then
        Memo.Action.N_load { Memo.Action.l_edges = [ (2, !chain) ] }
      else Memo.Action.N_store !chain
  done;
  Memo.Pcache.install_group pc cfg ~silent:3 ~retired:7
    ~classes:[| 1; 2; 3 |] ~first:!chain;
  let path = tmp "fastsim_deep.fspc" in
  Memo.Persist.Codec.save_file pc ~program:prog path;
  let pc' = Memo.Persist.Codec.load_file ~program:prog path in
  Sys.remove path;
  let c = Memo.Pcache.counters pc and c' = Memo.Pcache.counters pc' in
  check Alcotest.int "all nodes survive" c.static_actions c'.static_actions;
  check Alcotest.int "modeled bytes survive" c.modeled_bytes c'.modeled_bytes;
  (* walk the loaded chain iteratively and confirm the depth *)
  match (Memo.Pcache.find pc' "deep-chain-key" : Memo.Action.config option)
  with
  | None -> Alcotest.fail "config lost"
  | Some cfg' ->
    (match cfg'.Memo.Action.cfg_group with
     | None -> Alcotest.fail "group lost"
     | Some g ->
       check Alcotest.int "silent cycles" 3 g.Memo.Action.g_silent;
       let n = ref 0 in
       let cur = ref (Some g.Memo.Action.g_first) in
       while !cur <> None do
         (match !cur with
          | Some (Memo.Action.N_store next) ->
            incr n;
            cur := Some next
          | Some (Memo.Action.N_load { Memo.Action.l_edges = [ (2, next) ] })
            ->
            incr n;
            cur := Some next
          | Some Memo.Action.N_halt -> cur := None
          | _ -> Alcotest.fail "unexpected node shape");
         ()
       done;
       check Alcotest.int "chain depth survives" depth !n)

(* A truncated stream must surface as Format_error (the CLI turns that
   into a diagnostic), never as a raw End_of_file leaking out of the
   reader. *)
let test_truncated_stream () =
  let w = Workloads.Suite.find "li" in
  let prog = w.Workloads.Workload.build w.Workloads.Workload.test_scale in
  let pc = Memo.Pcache.create () in
  ignore (run_fast ~pcache:pc prog : Fastsim.Sim.result);
  let path = tmp "fastsim_trunc.fspc" in
  Memo.Persist.Codec.save_file pc ~program:prog path;
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let full = really_input_string ic len in
  close_in ic;
  check Alcotest.bool "file is non-trivial" true (len > 64);
  (* cut inside the magic, the digest, the config table, and near the end *)
  [ 3; 20; len / 4; len / 2; len - 1 ]
  |> List.iter (fun cut ->
         let tpath = tmp (Printf.sprintf "fastsim_trunc_%d.fspc" cut) in
         let oc = open_out_bin tpath in
         output_string oc (String.sub full 0 cut);
         close_out oc;
         (match Memo.Persist.Codec.load_file ~program:prog tpath with
          | _ -> Alcotest.failf "cut at %d: expected Format_error" cut
          | exception Memo.Persist.Format_error _ -> ()
          | exception End_of_file ->
            Alcotest.failf "cut at %d: raw End_of_file leaked" cut);
         Sys.remove tpath);
  Sys.remove path

(* The digest covers the code words only — initial data is deliberately
   excluded (memoized actions never read data values; data-dependent
   paths diverge to detailed simulation), so a warm cache survives
   re-seeded inputs. *)
let test_digest_covers_code_only () =
  let code =
    [| Isa.Instr.Alui (Isa.Instr.Add, 2, 0, 1); Isa.Instr.Halt |]
  in
  let base = Isa.Program.default_data_base in
  let p1 = Isa.Program.make ~data:[ (base, "alpha") ] code in
  let p2 = Isa.Program.make ~data:[ (base, "omega") ] code in
  let p3 = Isa.Program.make [| Isa.Instr.Nop; Isa.Instr.Halt |] in
  check Alcotest.string "same code, different data: same digest"
    (Memo.Persist.program_digest p1)
    (Memo.Persist.program_digest p2);
  check Alcotest.bool "different code: different digest" true
    (Memo.Persist.program_digest p1 <> Memo.Persist.program_digest p3)

(* ---------------------------------------------------------------- *)
(* Frozen migration fixtures. The files under test/fixtures/persist/
   are committed FSPC0002/FSPC0003 byte streams for a fixed synthetic
   program; the current reader must keep loading them (migrating inline
   stride segments into the chain store on the way in) even after the
   writers are gone or deprecated. Regenerate only after a deliberate
   format change, by running the test binary from the test/ source
   directory with UPDATE_FIXTURES=1. *)

let fixture_dir = "fixtures/persist"

let fixture_program () =
  Isa.Program.make
    [| Isa.Instr.Alui (Isa.Instr.Add, 2, 0, 7);
       Isa.Instr.Alui (Isa.Instr.Add, 3, 2, 5);
       Isa.Instr.Halt |]

(* Same synthetic key layout as test_stride.ml. *)
let fx_key ?(entries = 4) ?(ind = 0) tag =
  let b = Bytes.make (11 + (4 * entries) + (4 * ind)) '\000' in
  Bytes.set b 5 (Char.chr entries);
  Bytes.set b 6 (Char.chr ind);
  Bytes.set b 7 (Char.chr (tag land 0xff));
  Bytes.set b 8 (Char.chr ((tag lsr 8) land 0xff));
  Bytes.unsafe_to_string b

let fx_record_run pc ~first ~last =
  for i = first to last do
    let cfg = Memo.Pcache.intern pc (fx_key i) in
    let terminal =
      if i = last then Memo.Action.T_halt
      else Memo.Action.T_goto (Memo.Pcache.intern pc (fx_key (i + 1)))
    in
    ignore
      (Memo.Pcache.merge_group pc cfg ~classes:[| i |] ~silent:i ~retired:1
         ~items:[ Memo.Action.I_load (100 + i) ]
         ~terminal
        : Memo.Action.config option)
  done

(* Deterministic cache exercising every chain shape the old formats can
   carry: multi-edge loads, control edges, rollback, goto, and (for v3)
   one compacted stride. *)
let build_fixture_cache ~with_stride () =
  let pc = Memo.Pcache.create () in
  let a = Memo.Pcache.intern pc "fixture-a" in
  let b = Memo.Pcache.intern pc "fixture-b" in
  Memo.Pcache.install_group pc b ~silent:2 ~retired:1 ~classes:[| 1 |]
    ~first:(Memo.Action.N_store Memo.Action.N_halt);
  let chain_a =
    Memo.Action.N_load
      { Memo.Action.l_edges =
          [ ( 2,
              Memo.Action.N_ctl
                { Memo.Action.c_edges =
                    [ ( Uarch.Oracle.C_cond
                          { taken = true; mispredicted = false },
                        Memo.Action.N_goto { Memo.Action.target = b } );
                      (Uarch.Oracle.C_stalled, Memo.Action.N_halt) ] } );
            (7, Memo.Action.N_rollback (1, Memo.Action.N_halt)) ] }
  in
  Memo.Pcache.install_group pc a ~silent:5 ~retired:3 ~classes:[| 0; 2 |]
    ~first:chain_a;
  if with_stride then begin
    fx_record_run pc ~first:1 ~last:6;
    let head = Memo.Pcache.intern pc (fx_key 1) in
    if not (Memo.Pcache.compact pc head) then
      failwith "fixture generator: run failed to compact"
  end;
  pc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let regen_fixtures () =
  (match Unix.mkdir fixture_dir 0o755 with
   | () -> ()
   | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let prog = fixture_program () in
  (* v3: plain chains plus one stride with inline segments *)
  let v3_path = Filename.concat fixture_dir "migrate_v3.fspc" in
  Memo.Persist.Codec.save_file ~codec:Memo.Persist.Codec.v3
    (build_fixture_cache ~with_stride:true ())
    ~program:prog v3_path;
  (* v2: the same encoding restricted to plain chains (no 'T' tag ever
     appears), under the old magic — there is no v2 writer to call *)
  let tmp2 = tmp "fastsim_fixture_v2.fspc" in
  Memo.Persist.Codec.save_file ~codec:Memo.Persist.Codec.v3
    (build_fixture_cache ~with_stride:false ())
    ~program:prog tmp2;
  let s = read_file tmp2 in
  Sys.remove tmp2;
  let patched =
    "FSPC0002" ^ String.sub s 8 (String.length s - 8)
  in
  write_file (Filename.concat fixture_dir "migrate_v2.fspc") patched

let count_strides pc =
  let n = ref 0 in
  Memo.Pcache.iter_configs
    (fun c ->
      match c.Memo.Action.cfg_group with
      | Some { Memo.Action.g_first = Memo.Action.N_stride _; _ } -> incr n
      | _ -> ())
    pc;
  !n

let test_migration_fixture_v2 () =
  if Sys.getenv_opt "UPDATE_FIXTURES" <> None then regen_fixtures ();
  let prog = fixture_program () in
  let s = read_file (Filename.concat fixture_dir "migrate_v2.fspc") in
  check Alcotest.string "frozen magic" "FSPC0002" (String.sub s 0 8);
  let pc = Memo.Persist.Codec.load_string ~program:prog s in
  let c = Memo.Pcache.counters pc in
  check Alcotest.int "both configs load" 2 c.live_configs;
  check Alcotest.int "no strides in a v2 stream" 0 (count_strides pc);
  (match Memo.Pcache.find pc "fixture-a" with
   | Some { Memo.Action.cfg_group = Some g; _ } ->
     check Alcotest.int "silent cycles" 5 g.Memo.Action.g_silent;
     check Alcotest.int "retired" 3 g.Memo.Action.g_retired
   | _ -> Alcotest.fail "fixture-a group lost");
  (* migration is forward-only: re-save in the current format, reload,
     and the structure is a fixpoint *)
  let path = tmp "fastsim_fixture_v2_v4.fspc" in
  Memo.Persist.Codec.save_file pc ~program:prog path;
  let pc' = Memo.Persist.Codec.load_file ~program:prog path in
  Sys.remove path;
  let c' = Memo.Pcache.counters pc' in
  check Alcotest.int "v4 fixpoint: configs" c.live_configs c'.live_configs;
  check Alcotest.int "v4 fixpoint: actions" c.static_actions
    c'.static_actions;
  check Alcotest.int "v4 fixpoint: bytes" c.modeled_bytes c'.modeled_bytes

let test_migration_fixture_v3 () =
  if Sys.getenv_opt "UPDATE_FIXTURES" <> None then regen_fixtures ();
  let prog = fixture_program () in
  let s = read_file (Filename.concat fixture_dir "migrate_v3.fspc") in
  check Alcotest.string "frozen magic" "FSPC0003" (String.sub s 0 8);
  let store = Memo.Store.create () in
  let pc = Memo.Persist.Codec.load_string ~store ~program:prog s in
  check Alcotest.int "stride migrates" 1 (count_strides pc);
  (* the inline segments were interned into the chain store on the way
     in — the loaded cache is already in the compressed representation *)
  check Alcotest.bool "store holds the migrated rules" true
    (Memo.Store.live_rules store > 0);
  (* re-saving in the current format must never be larger: the rule
     table writes each shared suffix once *)
  let path = tmp "fastsim_fixture_v3_v4.fspc" in
  Memo.Persist.Codec.save_file pc ~program:prog path;
  let v4 = read_file path in
  check Alcotest.bool "v4 no larger than the v3 stream" true
    (String.length v4 <= String.length s);
  let store' = Memo.Store.create () in
  let pc' = Memo.Persist.Codec.load_file ~store:store' ~program:prog path in
  Sys.remove path;
  check Alcotest.int "v4 reload: strides" 1 (count_strides pc');
  check Alcotest.int "v4 reload: bytes"
    (Memo.Pcache.counters pc).modeled_bytes
    (Memo.Pcache.counters pc').modeled_bytes;
  (* dropping the cache returns every rule to its store *)
  Memo.Pcache.release_rules pc';
  check Alcotest.int "rules released" 0 (Memo.Store.live_rules store')

(* Loading two caches of the same program into one shared store keeps a
   single copy of their common chains — the registry's cross-spec
   sharing, exercised at the persist layer. *)
let test_shared_store_load_dedups () =
  let prog = fixture_program () in
  let mk () =
    let pc = build_fixture_cache ~with_stride:true () in
    let path = tmp "fastsim_shared_load.fspc" in
    Memo.Persist.Codec.save_file pc ~program:prog path;
    let s = read_file path in
    Sys.remove path;
    s
  in
  let s = mk () in
  let solo_store = Memo.Store.create () in
  let _solo =
    Memo.Persist.Codec.load_string ~store:solo_store ~program:prog s
  in
  let rules_one = Memo.Store.live_rules solo_store in
  let shared = Memo.Store.create () in
  let pc1 = Memo.Persist.Codec.load_string ~store:shared ~program:prog s in
  let pc2 = Memo.Persist.Codec.load_string ~store:shared ~program:prog s in
  check Alcotest.int "second load adds no rules" rules_one
    (Memo.Store.live_rules shared);
  Memo.Pcache.release_rules pc1;
  check Alcotest.int "shared rules survive the first release" rules_one
    (Memo.Store.live_rules shared);
  Memo.Pcache.release_rules pc2;
  check Alcotest.int "empty after the last holder" 0
    (Memo.Store.live_rules shared)

let suite =
  [ Alcotest.test_case "save/load round trip" `Quick test_roundtrip_counters;
    Alcotest.test_case "frozen FSPC0002 fixture migrates" `Quick
      test_migration_fixture_v2;
    Alcotest.test_case "frozen FSPC0003 fixture migrates" `Quick
      test_migration_fixture_v3;
    Alcotest.test_case "shared-store loads dedup" `Quick
      test_shared_store_load_dedups;
    Alcotest.test_case "deep action chain survives save/load without \
                        overflowing the stack"
      `Quick test_deep_chain_roundtrip;
    Alcotest.test_case "truncated stream raises Format_error" `Quick
      test_truncated_stream;
    Alcotest.test_case "digest covers code words only" `Quick
      test_digest_covers_code_only;
    Alcotest.test_case "warm start: same results, fewer detailed insts"
      `Quick test_warm_start_equivalent_and_faster;
    Alcotest.test_case "program digest guard" `Quick test_digest_guard;
    Alcotest.test_case "corrupt stream" `Quick test_corrupt_stream;
    Alcotest.test_case "digest sensitivity" `Quick
      test_digest_distinguishes_scales ]
