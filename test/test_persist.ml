(* P-action cache persistence: save/load round trips, the program digest
   guard, and warm-started simulation. *)

let check = Alcotest.check

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let run_fast ~pcache prog =
  Fastsim.Sim.run ~engine:`Fast
    Fastsim.Sim.Spec.(with_pcache pcache default)
    prog

let test_roundtrip_counters () =
  let w = Workloads.Suite.find "li" in
  let prog = w.Workloads.Workload.build w.Workloads.Workload.test_scale in
  let pc = Memo.Pcache.create () in
  let r1 = run_fast ~pcache:pc prog in
  let path = tmp "fastsim_test.fspc" in
  Memo.Persist.save_file pc ~program:prog path;
  let pc' = Memo.Persist.load_file ~program:prog path in
  let c = Memo.Pcache.counters pc and c' = Memo.Pcache.counters pc' in
  check Alcotest.int "configs survive" c.live_configs c'.live_configs;
  check Alcotest.int "actions survive" c.static_actions c'.static_actions;
  check Alcotest.int "modeled bytes survive" c.modeled_bytes c'.modeled_bytes;
  Sys.remove path;
  ignore r1

let test_warm_start_equivalent_and_faster () =
  let w = Workloads.Suite.find "compress" in
  let prog = w.Workloads.Workload.build 1 in
  let pc = Memo.Pcache.create () in
  let cold = run_fast ~pcache:pc prog in
  let path = tmp "fastsim_warm.fspc" in
  Memo.Persist.save_file pc ~program:prog path;
  let warm_pc = Memo.Persist.load_file ~program:prog path in
  let warm = run_fast ~pcache:warm_pc prog in
  Sys.remove path;
  (* identical results... *)
  check Alcotest.int "cycles" cold.Fastsim.Sim.cycles warm.Fastsim.Sim.cycles;
  check Alcotest.int "retired" cold.Fastsim.Sim.retired
    warm.Fastsim.Sim.retired;
  (* ...with far less detailed simulation *)
  match (cold.Fastsim.Sim.memo, warm.Fastsim.Sim.memo) with
  | Some mc, Some mw ->
    check Alcotest.bool "warm start replays more" true
      (mw.Memo.Stats.detailed_retired * 2 < mc.Memo.Stats.detailed_retired)
  | _ -> Alcotest.fail "memo stats expected"

let test_digest_guard () =
  let w = Workloads.Suite.find "li" in
  let prog = w.Workloads.Workload.build w.Workloads.Workload.test_scale in
  let other = (Workloads.Suite.find "go").build 1 in
  let pc = Memo.Pcache.create () in
  ignore (run_fast ~pcache:pc prog : Fastsim.Sim.result);
  let path = tmp "fastsim_digest.fspc" in
  Memo.Persist.save_file pc ~program:prog path;
  (match Memo.Persist.load_file ~program:other path with
   | _ -> Alcotest.fail "expected Format_error"
   | exception Memo.Persist.Format_error _ -> ());
  Sys.remove path

let test_corrupt_stream () =
  let path = tmp "fastsim_corrupt.fspc" in
  let oc = open_out_bin path in
  output_string oc "NOTAPCACHE-----";
  close_out oc;
  let prog = (Workloads.Suite.find "li").build 1 in
  (match Memo.Persist.load_file ~program:prog path with
   | _ -> Alcotest.fail "expected Format_error"
   | exception Memo.Persist.Format_error _ -> ());
  Sys.remove path

let test_digest_distinguishes_scales () =
  let w = Workloads.Suite.find "go" in
  let d1 = Memo.Persist.program_digest (w.Workloads.Workload.build 1) in
  let d2 = Memo.Persist.program_digest (w.Workloads.Workload.build 2) in
  check Alcotest.bool "different scales, different digests" true (d1 <> d2);
  let d1' = Memo.Persist.program_digest (w.Workloads.Workload.build 1) in
  check Alcotest.string "deterministic digest" d1 d1'

let suite =
  [ Alcotest.test_case "save/load round trip" `Quick test_roundtrip_counters;
    Alcotest.test_case "warm start: same results, fewer detailed insts"
      `Quick test_warm_start_equivalent_and_faster;
    Alcotest.test_case "program digest guard" `Quick test_digest_guard;
    Alcotest.test_case "corrupt stream" `Quick test_corrupt_stream;
    Alcotest.test_case "digest sensitivity" `Quick
      test_digest_distinguishes_scales ]
