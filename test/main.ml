(* Test runner: one alcotest per subsystem plus the cross-engine
   equivalence suite that checks the paper's central claim. *)

let () =
  Alcotest.run "fastsim"
    [ ("isa", Test_isa.suite);
      ("parse", Test_parse.suite);
      ("memory", Test_memory.suite);
      ("seq-queue", Test_seq_queue.suite);
      ("emulator", Test_emulator.suite);
      ("semantics", Test_semantics.suite);
      ("speculation", Test_speculation.suite);
      ("bpred", Test_bpred.suite);
      ("cache", Test_cache.suite);
      ("uarch", Test_uarch.suite);
      ("obs", Test_obs.suite);
      ("memo", Test_memo.suite);
      ("ctable", Test_ctable.suite);
      ("stride", Test_stride.suite);
      ("rules", Test_rules.suite);
      ("persist", Test_persist.suite);
      ("baseline", Test_baseline.suite);
      ("faults", Test_faults.suite);
      ("workloads", Test_workloads.suite);
      ("equivalence", Test_equivalence.suite);
      ("exec", Test_exec.suite);
      ("serve", Test_serve.suite);
      ("check", Test_check.suite);
      ("strategy", Test_strategy.suite);
      ("golden", Test_golden.suite) ]
