(* Fastsim_exec: the sweep/batch driver. Manifest round-trips, report
   determinism (byte-identical modulo timing), agreement between pooled
   and direct execution, and the fault paths — worker crash with retry,
   timeout kill, and exhausted retries. *)

module Exec = Fastsim_exec
module J = Fastsim_obs.Json
module Spec = Fastsim.Sim.Spec

let check = Alcotest.check

let fresh_sentinel =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fastsim-test-fault-%d-%d" (Unix.getpid ()) !n)

let rm path = if Sys.file_exists path then Sys.remove path

let small_manifest ?(workloads = [ "li"; "compress" ]) () =
  { (Exec.Manifest.make ~workloads ()) with Exec.Manifest.scales = Some [ 1 ] }

let inline_config =
  { Exec.Sweep.default_config with Exec.Sweep.backend = Exec.Pool.Inline }

(* ---------------------------------------------------------------- *)
(* Spec JSON round-trip: for any serializable spec, to_json → print →
   parse → of_json reconstructs it exactly (through the Json parser). *)

let spec_roundtrip_prop =
  QCheck.Test.make ~name:"Spec JSON round-trip" ~count:100
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let spec = Gen.random_spec st in
      let json = Spec.to_json spec in
      let reparsed = J.of_string (J.to_string json) in
      reparsed = json && Spec.of_json_result reparsed = Ok spec)

let test_spec_of_json_rejects_unknown () =
  (match Spec.of_json_result (J.of_string {|{"politics": "unbounded"}|}) with
   | Ok _ -> Alcotest.fail "expected Error on unknown key"
   | Error _ -> ());
  match Spec.policy_of_string "flush" with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error _ -> ()

(* The Result-form decoders reject bad input without raising — and a
   repeated key is an error, never silently last-wins. *)
let test_spec_of_json_result () =
  (match Spec.of_json_result (J.of_string {|{"politics": "unbounded"}|}) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown key accepted");
  (match
     Spec.of_json_result
       (J.of_string {|{"policy": "unbounded", "policy": "copy:64"}|})
   with
   | Error m ->
     let contains_duplicate =
       let m = String.lowercase_ascii m in
       let n = String.length m in
       let rec scan i =
         i + 9 <= n && (String.sub m i 9 = "duplicate" || scan (i + 1))
       in
       scan 0
     in
     Alcotest.(check bool) "error names the duplicate" true
       contains_duplicate
   | Ok _ -> Alcotest.fail "duplicate key accepted");
  (match
     Spec.params_of_json_result
       (J.of_string {|{"fetch_width": 4, "fetch_width": 8}|})
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "duplicate params key accepted");
  (match
     Spec.cache_config_of_json_result
       (J.of_string {|{"l1_size": 1024, "l1_size": 2048}|})
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "duplicate cache key accepted");
  match Spec.of_json_result (Spec.to_json Spec.default) with
  | Ok s -> Alcotest.(check bool) "well-formed spec decodes" true (s = Spec.default)
  | Error m -> Alcotest.failf "default spec rejected: %s" m

(* v1 wire-format compatibility: documents written before the versioned
   format (no "version" field, no issue_width / fu_latency / issue_ports)
   must keep decoding, and must mean the same machine they meant when
   written. The corpus under test/fixtures/spec_v1/ is frozen: new fields
   get new fixtures, existing files never change. *)
let test_spec_v1_fixtures () =
  let dir = "fixtures/spec_v1" in
  let files = List.sort compare (Array.to_list (Sys.readdir dir)) in
  Alcotest.(check bool) "fixture corpus present" true (files <> []);
  let decode f =
    match Spec.of_json_result (J.of_file (Filename.concat dir f)) with
    | Ok spec -> spec
    | Error m -> Alcotest.failf "%s: %s" f m
  in
  List.iter
    (fun f ->
      let spec = decode f in
      (* the canonical (v2) re-encoding decodes back to the same spec *)
      match Spec.of_json_result (Spec.to_json spec) with
      | Ok spec' ->
        Alcotest.(check bool) (f ^ ": canonicalisation stable") true
          (spec = spec')
      | Error m -> Alcotest.failf "%s: re-encode rejected: %s" f m)
    files;
  (* spot-check decoded meaning against the values frozen in the files *)
  Alcotest.(check bool) "full.json spells out the default machine" true
    (decode "full.json" = Spec.default);
  Alcotest.(check bool) "empty.json is the default spec" true
    (decode "empty.json" = Spec.default);
  let partial = decode "partial-params.json" in
  Alcotest.(check int) "partial fetch_width" 2
    partial.Spec.params.Uarch.Params.fetch_width;
  Alcotest.(check int) "partial active_list" 16
    partial.Spec.params.Uarch.Params.active_list;
  Alcotest.(check int) "partial leaves decode_width alone"
    Uarch.Params.default.Uarch.Params.decode_width
    partial.Spec.params.Uarch.Params.decode_width;
  let pp = decode "policy-predictor.json" in
  Alcotest.(check bool) "predictor taken" true
    (pp.Spec.predictor = Fastsim.Sim.Taken);
  Alcotest.(check bool) "generational policy" true
    (pp.Spec.policy
    = Memo.Pcache.Generational_gc { nursery = 4096; total = 16384 });
  Alcotest.(check int) "max_cycles" 2_000_000 pp.Spec.max_cycles;
  let ev = decode "explicit-version.json" in
  Alcotest.(check int) "explicit v1 phys_int_regs" 48
    ev.Spec.params.Uarch.Params.phys_int_regs;
  (* and a document from the future is refused, naming the version *)
  match Spec.of_json_result (J.of_string {|{"version": 99}|}) with
  | Ok _ -> Alcotest.fail "future version accepted"
  | Error m ->
    Alcotest.(check bool) "error names $.version" true
      (String.length m >= 9
      && String.sub m (String.length "spec: ") 9 = "$.version")

(* result_to_json / result_of_json: full fidelity both with and without
   the fast-engine-only sections. *)
let test_result_json_roundtrip () =
  let w = Workloads.Suite.find "li" in
  let prog = w.Workloads.Workload.build w.Workloads.Workload.test_scale in
  List.iter
    (fun engine ->
      let spec =
        match engine with
        | `Fast -> Spec.with_pcache (Memo.Pcache.create ()) Spec.default
        | _ -> Spec.default
      in
      let r = Fastsim.Sim.run ~engine spec prog in
      let j = Fastsim.Sim.result_to_json r in
      match Fastsim.Sim.result_of_json (J.of_string (J.to_string j)) with
      | Error m -> Alcotest.failf "result decode: %s" m
      | Ok r' ->
        check Alcotest.string "result JSON round-trip"
          (J.to_string j)
          (J.to_string (Fastsim.Sim.result_to_json r')))
    [ `Fast; `Slow; `Baseline ];
  (* FP registers holding values JSON cannot spell must still
     round-trip bit-exactly (FP workloads produce NaN/inf) *)
  let r = Fastsim.Sim.run ~engine:`Baseline Spec.default prog in
  r.Fastsim.Sim.final_state.Emu.Arch_state.fregs.(0) <- Float.nan;
  r.Fastsim.Sim.final_state.Emu.Arch_state.fregs.(1) <- Float.infinity;
  r.Fastsim.Sim.final_state.Emu.Arch_state.fregs.(2) <- Float.neg_infinity;
  let j = Fastsim.Sim.result_to_json r in
  (match Fastsim.Sim.result_of_json (J.of_string (J.to_string j)) with
   | Error m -> Alcotest.failf "non-finite fregs: %s" m
   | Ok r' ->
     let bits i =
       Int64.bits_of_float
         r'.Fastsim.Sim.final_state.Emu.Arch_state.fregs.(i)
     in
     Alcotest.(check bool) "nan bits preserved" true
       (bits 0 = Int64.bits_of_float Float.nan);
     Alcotest.(check bool) "inf preserved" true
       (r'.Fastsim.Sim.final_state.Emu.Arch_state.fregs.(1) = Float.infinity);
     Alcotest.(check bool) "-inf preserved" true
       (r'.Fastsim.Sim.final_state.Emu.Arch_state.fregs.(2)
       = Float.neg_infinity));
  match
    Fastsim.Sim.result_of_json (J.of_string {|{"cycles": 1, "cycles": 2}|})
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate result key accepted"

let test_manifest_roundtrip () =
  let m =
    { (Exec.Manifest.make ~workloads:[ "099.go"; "129.compress" ] ()) with
      Exec.Manifest.scales = Some [ 1; 2 ];
      engines = [ `Fast; `Slow; `Baseline ];
      predictors = [ Fastsim.Sim.Standard; Fastsim.Sim.Taken ];
      cache_configs =
        [ { Exec.Manifest.c_name = "default";
            c_config = Cachesim.Config.default };
          { Exec.Manifest.c_name = "tiny"; c_config = Cachesim.Config.tiny } ];
      policies =
        [ Memo.Pcache.Unbounded; Memo.Pcache.Flush_on_full 16_384 ];
      max_cycles = Some 1_000_000;
      warm = true }
  in
  let m' = Exec.Manifest.of_json (J.of_string (J.to_string (Exec.Manifest.to_json m))) in
  check Alcotest.string "manifest JSON round-trip"
    (J.to_string (Exec.Manifest.to_json m))
    (J.to_string (Exec.Manifest.to_json m'))

let test_expand_deterministic_ids () =
  let m = small_manifest () in
  let a = Exec.Manifest.expand m and b = Exec.Manifest.expand m in
  check Alcotest.int "job count" (List.length a) (List.length b);
  List.iter2
    (fun (x : Exec.Job.t) (y : Exec.Job.t) ->
      check Alcotest.int "id" x.Exec.Job.id y.Exec.Job.id;
      check Alcotest.string "label" (Exec.Job.label x) (Exec.Job.label y))
    a b;
  (* ids are positional *)
  List.iteri
    (fun i (j : Exec.Job.t) -> check Alcotest.int "positional id" i j.Exec.Job.id)
    a

(* The baseline engine ignores the predictor and policy axes, so
   expansion collapses them to one representative point instead of
   emitting duplicate jobs with distinct labels. *)
let test_expand_collapses_baseline_axes () =
  let m =
    { (small_manifest ~workloads:[ "li" ] ()) with
      Exec.Manifest.engines = [ `Fast; `Baseline ];
      predictors = [ Fastsim.Sim.Standard; Fastsim.Sim.Taken ];
      policies = [ Memo.Pcache.Unbounded; Memo.Pcache.Flush_on_full 16_384 ] }
  in
  let jobs = Exec.Manifest.expand m in
  let count e =
    List.length
      (List.filter (fun (j : Exec.Job.t) -> j.Exec.Job.engine = e) jobs)
  in
  check Alcotest.int "fast jobs cover the full product" 4 (count `Fast);
  check Alcotest.int "baseline collapses predictor and policy" 1
    (count `Baseline);
  let labels = List.map Exec.Job.label jobs in
  check Alcotest.int "labels are unique" (List.length jobs)
    (List.length (List.sort_uniq compare labels))

(* Re-using one scratch dir across Pool.map calls must never surface an
   earlier call's result file as a later task's outcome: task indices
   restart at 0, and unmarshalling a stale file at a different type is
   memory-unsafe. The second call's task 0 dies without writing a result,
   so it must settle Crashed, not Done-with-a-stale-float. *)
let test_pool_stale_results_not_reused () =
  Exec.Pool.with_temp_dir ~prefix:"fastsim-test-stale" (fun scratch ->
      let first =
        Exec.Pool.map ~backend:Exec.Pool.Fork ~jobs:2 ~scratch_dir:scratch
          (fun i -> float_of_int i) 2
      in
      Array.iter
        (fun (s : float Exec.Pool.settled) ->
          match s.Exec.Pool.outcome with
          | Exec.Pool.Done _ -> ()
          | _ -> Alcotest.fail "first map did not complete")
        first;
      let second =
        Exec.Pool.map ~backend:Exec.Pool.Fork ~jobs:2 ~scratch_dir:scratch
          (fun i -> if i = 0 then Unix._exit 9 else "ok") 2
      in
      (match second.(0).Exec.Pool.outcome with
       | Exec.Pool.Crashed _ -> ()
       | Exec.Pool.Done _ -> Alcotest.fail "stale result reported as Done"
       | Exec.Pool.Timed_out -> Alcotest.fail "unexpected timeout");
      match second.(1).Exec.Pool.outcome with
      | Exec.Pool.Done "ok" -> ()
      | _ -> Alcotest.fail "healthy sibling failed")

(* Spawning an async worker with a span collector records the fork as
   a "pool.fork" span carrying the tag and the child's pid — the hook
   the daemon uses to put fork latency into request traces. *)
let test_async_spawn_records_span () =
  let module Span = Fastsim_obs.Span in
  Exec.Pool.with_temp_dir ~prefix:"fastsim-test-span" (fun scratch ->
      let spans = Span.create () in
      let task =
        Exec.Pool.Async.spawn ~spans ~scratch_dir:scratch ~tag:"t0"
          (fun () -> 41 + 1)
      in
      let rec settle () =
        match Exec.Pool.Async.poll task with
        | Some o -> o
        | None ->
          Unix.sleepf 0.01;
          settle ()
      in
      (match settle () with
       | Exec.Pool.Done 42 -> ()
       | _ -> Alcotest.fail "async task failed");
      match Span.spans spans with
      | [ s ] ->
        check Alcotest.string "span name" "pool.fork" s.Span.name;
        check Alcotest.string "span cat" "pool" s.Span.cat;
        check Alcotest.int "recorded by the parent" (Unix.getpid ())
          s.Span.pid;
        (match List.assoc_opt "tag" s.Span.args with
         | Some (J.Str "t0") -> ()
         | _ -> Alcotest.fail "tag arg missing");
        (match List.assoc_opt "pid" s.Span.args with
         | Some (J.Int p) ->
           check Alcotest.int "child pid arg" (Exec.Pool.Async.pid task) p
         | _ -> Alcotest.fail "pid arg missing")
      | ss -> Alcotest.failf "expected 1 span, got %d" (List.length ss))

(* ---------------------------------------------------------------- *)
(* Determinism: two runs of the same manifest produce byte-identical
   reports once host-time values are stripped. *)

let stripped r =
  J.to_string (Exec.Report.strip_timing (Exec.Report.to_json r))

let results_and_rollups r =
  let j = Exec.Report.strip_timing (Exec.Report.to_json r) in
  J.to_string (J.Obj [ ("results", J.member "results" j);
                       ("rollups", J.member "rollups" j) ])

let test_sweep_deterministic () =
  let m = small_manifest () in
  let r1 = Exec.Sweep.run ~config:inline_config m in
  let r2 = Exec.Sweep.run ~config:inline_config m in
  check Alcotest.string "byte-identical modulo timing" (stripped r1)
    (stripped r2)

let test_fork_matches_inline () =
  let m = small_manifest () in
  let r_inline = Exec.Sweep.run ~config:inline_config m in
  let r_fork =
    Exec.Sweep.run
      ~config:
        { Exec.Sweep.default_config with
          Exec.Sweep.backend = Exec.Pool.Fork;
          jobs = 2 }
      m
  in
  check Alcotest.string "fork == inline (results+rollups)"
    (results_and_rollups r_inline)
    (results_and_rollups r_fork)

(* Each pooled result must match a direct in-process Sim.run of the same
   job — the acceptance criterion for `fastsim sweep` vs `fastsim run`. *)
let test_report_cycles_match_direct_runs () =
  let m = small_manifest () in
  let r =
    Exec.Sweep.run
      ~config:
        { Exec.Sweep.default_config with
          Exec.Sweep.backend = Exec.Pool.Fork;
          jobs = 4 }
      m
  in
  check Alcotest.int "all ok"
    (List.length r.Exec.Report.entries)
    (Exec.Report.ok_count r);
  List.iter
    (fun (e : Exec.Report.entry) ->
      match e.Exec.Report.outcome with
      | `Failed msg -> Alcotest.fail msg
      | `Ok rr ->
        let direct, _ = Exec.Runner.run_sim e.Exec.Report.job in
        let label = Exec.Job.label e.Exec.Report.job in
        check Alcotest.int (label ^ " cycles") direct.Fastsim.Sim.cycles
          rr.Exec.Runner.summary.Fastsim.Sim.cycles;
        check Alcotest.int (label ^ " retired") direct.Fastsim.Sim.retired
          rr.Exec.Runner.summary.Fastsim.Sim.retired)
    r.Exec.Report.entries

(* Warm-started fast jobs report the same cycles as cold ones. *)
let test_warm_stage_preserves_results () =
  let m = { (small_manifest ~workloads:[ "compress" ] ()) with
            Exec.Manifest.engines = [ `Fast ] } in
  let cold = Exec.Sweep.run ~config:inline_config m in
  let warm =
    Exec.Sweep.run ~config:inline_config
      { m with Exec.Manifest.warm = true }
  in
  check Alcotest.int "one warming run" 1
    (List.length warm.Exec.Report.warming);
  List.iter2
    (fun (a : Exec.Report.entry) (b : Exec.Report.entry) ->
      match (a.Exec.Report.outcome, b.Exec.Report.outcome) with
      | `Ok ra, `Ok rb ->
        check Alcotest.int "cycles" ra.Exec.Runner.summary.Fastsim.Sim.cycles
          rb.Exec.Runner.summary.Fastsim.Sim.cycles
      | _ -> Alcotest.fail "warm sweep failed")
    cold.Exec.Report.entries warm.Exec.Report.entries

(* ---------------------------------------------------------------- *)
(* Fault paths (fork backend). *)

let fork_config ?(jobs = 2) ?(timeout_s = 0.) ?(retries = 1) () =
  { Exec.Sweep.backend = Exec.Pool.Fork;
    jobs;
    timeout_s;
    retries;
    on_progress = None }

let test_worker_crash_retries_and_completes () =
  let sentinel = fresh_sentinel () in
  let m =
    { (small_manifest ~workloads:[ "li" ] ()) with
      Exec.Manifest.engines = [ `Fast ];
      fault = Some (None, Exec.Job.Crash_once sentinel) }
  in
  let r = Exec.Sweep.run ~config:(fork_config ()) m in
  rm sentinel;
  check Alcotest.int "job count" 1 (List.length r.Exec.Report.entries);
  check Alcotest.int "all ok despite the crash" 1 (Exec.Report.ok_count r);
  List.iter
    (fun (e : Exec.Report.entry) ->
      check Alcotest.int "second attempt succeeded" 2 e.Exec.Report.attempts)
    r.Exec.Report.entries

let test_timeout_kills_and_retries () =
  let sentinel = fresh_sentinel () in
  let m =
    { (small_manifest ~workloads:[ "li" ] ()) with
      Exec.Manifest.engines = [ `Fast ];
      fault = Some (None, Exec.Job.Hang_once (sentinel, 30.)) }
  in
  let r = Exec.Sweep.run ~config:(fork_config ~timeout_s:2. ()) m in
  rm sentinel;
  check Alcotest.int "all ok after timeout retry" 1 (Exec.Report.ok_count r);
  List.iter
    (fun (e : Exec.Report.entry) ->
      check Alcotest.int "took two attempts" 2 e.Exec.Report.attempts)
    r.Exec.Report.entries

let test_exhausted_retries_fail_entry_only () =
  let sentinel = fresh_sentinel () in
  let m =
    { (small_manifest ~workloads:[ "li"; "compress" ] ()) with
      Exec.Manifest.engines = [ `Fast ];
      fault = Some (Some "li", Exec.Job.Crash_once sentinel) }
  in
  (* retries = 0: the faulted job fails; the sibling still completes and
     the report covers every job. *)
  let r = Exec.Sweep.run ~config:(fork_config ~retries:0 ()) m in
  rm sentinel;
  check Alcotest.int "both entries present" 2
    (List.length r.Exec.Report.entries);
  check Alcotest.int "one ok" 1 (Exec.Report.ok_count r);
  check Alcotest.int "one failed" 1 (List.length (Exec.Report.failed r));
  match Exec.Report.failed r with
  | [ e ] ->
    check Alcotest.string "the faulted workload failed" "130.li"
      e.Exec.Report.job.Exec.Job.workload
  | _ -> Alcotest.fail "expected exactly one failure"

let suite =
  [ QCheck_alcotest.to_alcotest spec_roundtrip_prop;
    Alcotest.test_case "Spec.of_json rejects unknown keys" `Quick
      test_spec_of_json_rejects_unknown;
    Alcotest.test_case "v1 spec fixtures stay decodable" `Quick
      test_spec_v1_fixtures;
    Alcotest.test_case "Result-form decoders and duplicate keys" `Quick
      test_spec_of_json_result;
    Alcotest.test_case "Sim.result JSON round-trip" `Quick
      test_result_json_roundtrip;
    Alcotest.test_case "manifest JSON round-trip" `Quick
      test_manifest_roundtrip;
    Alcotest.test_case "expansion is deterministic" `Quick
      test_expand_deterministic_ids;
    Alcotest.test_case "baseline collapses predictor/policy axes" `Quick
      test_expand_collapses_baseline_axes;
    Alcotest.test_case "stale pool results are never reused" `Quick
      test_pool_stale_results_not_reused;
    Alcotest.test_case "async spawn records a fork span" `Quick
      test_async_spawn_records_span;
    Alcotest.test_case "sweep report deterministic modulo timing" `Quick
      test_sweep_deterministic;
    Alcotest.test_case "fork backend matches inline" `Quick
      test_fork_matches_inline;
    Alcotest.test_case "pooled results match direct Sim.run" `Quick
      test_report_cycles_match_direct_runs;
    Alcotest.test_case "warm stage preserves results" `Quick
      test_warm_stage_preserves_results;
    Alcotest.test_case "worker crash retries and completes" `Quick
      test_worker_crash_retries_and_completes;
    Alcotest.test_case "timeout kills and retries" `Quick
      test_timeout_kills_and_retries;
    Alcotest.test_case "exhausted retries fail only that entry" `Quick
      test_exhausted_retries_fail_entry_only ]
