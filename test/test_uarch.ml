(* µ-architecture: snapshot round-trips, determinism from (configuration,
   outcomes), pipeline structure invariants. *)

let check = Alcotest.check

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
  scan 0

(* A recording oracle over live components; replays verbatim from a log. *)
type logged =
  | L_load of int
  | L_store
  | L_ctl of Uarch.Oracle.ctl_outcome
  | L_rollback of int

let live_logging_oracle prog =
  let emu = Emu.Emulator.create ~predictor:(Bpred.standard ~prog ()) prog in
  let cache = Cachesim.Hierarchy.create () in
  let log = ref [] in
  let oracle : Uarch.Oracle.t =
    { cache_load =
        (fun ~now ->
          let l = Emu.Emulator.pop_load emu in
          let lat = Cachesim.Hierarchy.load cache ~now ~addr:l.Emu.Emulator.l_addr in
          log := L_load lat :: !log;
          lat);
      cache_store =
        (fun ~now ->
          let s = Emu.Emulator.pop_store emu in
          Cachesim.Hierarchy.store cache ~now ~addr:s.Emu.Emulator.s_addr;
          log := L_store :: !log);
      fetch_control =
        (fun () ->
          let out =
            match Emu.Emulator.next_event emu with
            | Emu.Emulator.Cond { taken; predicted_taken; _ } ->
              Uarch.Oracle.C_cond
                { taken; mispredicted = taken <> predicted_taken }
            | Emu.Emulator.Indirect { target; predicted; _ } ->
              Uarch.Oracle.C_indirect
                { target; hit = predicted = Some target }
            | Emu.Emulator.Halted _ | Emu.Emulator.Wedged _ ->
              Uarch.Oracle.C_stalled
          in
          log := L_ctl out :: !log;
          out);
      rollback =
        (fun ~index ->
          ignore (Emu.Emulator.rollback_to emu ~index : int);
          log := L_rollback index :: !log) }
  in
  (oracle, log)

let replay_oracle log =
  let remaining = ref log in
  let next () =
    match !remaining with
    | [] -> Alcotest.fail "replay oracle exhausted"
    | x :: rest ->
      remaining := rest;
      x
  in
  { Uarch.Oracle.cache_load =
      (fun ~now:_ ->
        match next () with
        | L_load lat -> lat
        | _ -> Alcotest.fail "log mismatch: load");
    cache_store =
      (fun ~now:_ ->
        match next () with
        | L_store -> ()
        | _ -> Alcotest.fail "log mismatch: store");
    fetch_control =
      (fun () ->
        match next () with
        | L_ctl c -> c
        | _ -> Alcotest.fail "log mismatch: ctl");
    rollback =
      (fun ~index ->
        match next () with
        | L_rollback i when i = index -> ()
        | _ -> Alcotest.fail "log mismatch: rollback") }

(* Drives a detailed simulator to completion against the live oracle,
   returning per-cycle snapshots and the interaction log. *)
let run_detailed prog =
  let oracle, log = live_logging_oracle prog in
  let uarch = Uarch.Detailed.create prog in
  let snaps = ref [ Uarch.Detailed.snapshot uarch ] in
  let cycle = ref 0 in
  let retired = ref 0 in
  while not (Uarch.Detailed.halted uarch) do
    let r = Uarch.Detailed.step_cycle uarch ~now:!cycle oracle in
    incr cycle;
    retired := !retired + r.Uarch.Detailed.retired;
    snaps := Uarch.Detailed.snapshot uarch :: !snaps;
    if !cycle > 1_000_000 then Alcotest.fail "runaway simulation"
  done;
  (List.rev !snaps, List.rev !log, !cycle, !retired)

let demo_prog =
  Gen.program_of_seed ~cfg:{ Gen.default_cfg with outer_iters = 2 } 42

let test_snapshot_roundtrip_every_cycle () =
  let snaps, _, _, _ = run_detailed demo_prog in
  List.iter
    (fun key ->
      let fetch, iq =
        Uarch.Snapshot.decode demo_prog ~capacity:32 key
      in
      let key' = Uarch.Snapshot.encode ~fetch iq in
      if not (String.equal key key') then
        Alcotest.failf "snapshot round-trip mismatch";
      let n_ind = ref 0 in
      Uarch.Pipeline.iteri
        (fun _ e -> if e.Uarch.Pipeline.ind_target >= 0 then incr n_ind)
        iq;
      check Alcotest.int "modeled bytes formula"
        (16
        + (((3 * Uarch.Snapshot.entry_count key) + 1) / 2)
        + (4 * !n_ind))
        (Uarch.Snapshot.modeled_bytes key))
    snaps

(* Determinism: re-running the detailed simulator from scratch with the
   recorded outcome log reproduces the identical snapshot trace. This is
   the property fast-forwarding rests on. *)
let test_determinism_from_outcomes () =
  let snaps, log, cycles, retired = run_detailed demo_prog in
  let oracle = replay_oracle log in
  let uarch = Uarch.Detailed.create demo_prog in
  let cycle = ref 0 and retired' = ref 0 in
  let snaps' = ref [ Uarch.Detailed.snapshot uarch ] in
  while not (Uarch.Detailed.halted uarch) do
    let r = Uarch.Detailed.step_cycle uarch ~now:!cycle oracle in
    incr cycle;
    retired' := !retired' + r.Uarch.Detailed.retired;
    snaps' := Uarch.Detailed.snapshot uarch :: !snaps'
  done;
  check Alcotest.int "same cycles" cycles !cycle;
  check Alcotest.int "same retired" retired !retired';
  check Alcotest.(list string) "same snapshot trace" snaps
    (List.rev !snaps')

(* Restoring from any mid-run snapshot and replaying the remaining
   outcomes finishes identically (the divergence-resume path). *)
let test_restore_mid_run () =
  let snaps, _, total_cycles, _ = run_detailed demo_prog in
  let n = List.length snaps in
  let pick = List.nth snaps (n / 2) in
  let uarch = Uarch.Detailed.restore demo_prog pick in
  check Alcotest.bool "restored in-flight sanity" true
    (Uarch.Detailed.in_flight uarch <= 32);
  check Alcotest.bool "total cycles consistent" true (total_cycles >= n - 1)

let test_fresh_snapshot_shape () =
  let uarch = Uarch.Detailed.create demo_prog in
  let key = Uarch.Detailed.snapshot uarch in
  check Alcotest.int "empty pipeline" 0 (Uarch.Snapshot.entry_count key);
  check Alcotest.int "empty config is 16 modeled bytes" 16
    (Uarch.Snapshot.modeled_bytes key)

let test_retire_bound () =
  (* never retires more than retire_width per cycle *)
  let oracle, _ = live_logging_oracle demo_prog in
  let uarch = Uarch.Detailed.create demo_prog in
  let cycle = ref 0 in
  while not (Uarch.Detailed.halted uarch) do
    let r = Uarch.Detailed.step_cycle uarch ~now:!cycle oracle in
    incr cycle;
    check Alcotest.bool "retire width" true (r.Uarch.Detailed.retired <= 4);
    check Alcotest.bool "active list bound" true
      (Uarch.Detailed.in_flight uarch <= 32)
  done

let test_cycles_exceed_ipc_bound () =
  let _, _, cycles, retired = run_detailed demo_prog in
  (* at most 4 IPC by construction *)
  check Alcotest.bool "IPC <= 4" true (retired <= 4 * cycles)

let test_params_validation () =
  (match
     Uarch.Detailed.create
       ~params:{ Uarch.Params.default with fetch_width = 0 }
       demo_prog
   with
   | _ -> Alcotest.fail "expected Invalid_argument"
   | exception Invalid_argument _ -> ());
  (* an active list beyond the one-byte snapshot entry limit is rejected
     up front, not at the first full-pipeline snapshot *)
  (match
     Uarch.Detailed.create
       ~params:{ Uarch.Params.default with active_list = 300 }
       demo_prog
   with
   | _ -> Alcotest.fail "expected Invalid_argument for active_list 300"
   | exception Invalid_argument m ->
     check Alcotest.bool "message names the limit" true
       (contains m "snapshot entry limit"));
  (* zero-latency functional units are rejected by name *)
  let lat = Array.copy Uarch.Params.default.Uarch.Params.fu_latency in
  lat.(Isa.Instr.fu_index Isa.Instr.Fu_mem) <- 0;
  match
    Uarch.Detailed.create
      ~params:{ Uarch.Params.default with fu_latency = lat }
      demo_prog
  with
  | _ -> Alcotest.fail "expected Invalid_argument for zero latency"
  | exception Invalid_argument m ->
    check Alcotest.bool "message names the class" true (contains m "mem")

(* Snapshot.encode enforces the configured (params-derived) entry limit,
   naming that limit — not a hard-coded 255 — in the error. *)
let test_snapshot_entry_limit () =
  let snaps, _, _, _ = run_detailed demo_prog in
  let fullest =
    List.fold_left
      (fun best k ->
        if Uarch.Snapshot.entry_count k > Uarch.Snapshot.entry_count best
        then k
        else best)
      (List.hd snaps) snaps
  in
  let n = Uarch.Snapshot.entry_count fullest in
  check Alcotest.bool "run filled the pipeline" true (n >= 2);
  let fetch, iq = Uarch.Snapshot.decode demo_prog ~capacity:32 fullest in
  (* the same iQ re-encodes fine at its own size... *)
  check Alcotest.string "re-encode at own size" fullest
    (Uarch.Snapshot.encode ~limit:n ~fetch iq);
  (* ...and is rejected under a tighter configured limit *)
  match Uarch.Snapshot.encode ~limit:(n - 1) ~fetch iq with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument m ->
    check Alcotest.bool "message names the configured limit" true
      (contains m (Printf.sprintf "configured limit %d" (n - 1)))

(* The rename stage is a pure function of the iQ: restoring from any
   mid-run snapshot rebuilds freelists with exactly the occupancy the
   live simulator had, under a starved PRF where it matters most. *)
let test_rename_rebuilt_on_restore () =
  let params =
    { Uarch.Params.default with
      Uarch.Params.phys_int_regs = 40;
      phys_fp_regs = 40 }
  in
  let int_budget = 40 - Isa.Reg.count and fp_budget = 40 - Isa.Reg.count in
  let oracle, _ = live_logging_oracle demo_prog in
  let uarch = Uarch.Detailed.create ~params demo_prog in
  let cycle = ref 0 and checked = ref 0 in
  while not (Uarch.Detailed.halted uarch) do
    ignore (Uarch.Detailed.step_cycle uarch ~now:!cycle oracle
            : Uarch.Detailed.cycle_result);
    incr cycle;
    let free_i, free_f = Uarch.Detailed.free_phys uarch in
    check Alcotest.bool "int freelist within budget" true
      (free_i >= 0 && free_i <= int_budget);
    check Alcotest.bool "fp freelist within budget" true
      (free_f >= 0 && free_f <= fp_budget);
    if !cycle mod 37 = 0 then begin
      let key = Uarch.Detailed.snapshot uarch in
      let uarch' = Uarch.Detailed.restore ~params demo_prog key in
      check
        Alcotest.(pair int int)
        "restore rebuilds identical freelists" (free_i, free_f)
        (Uarch.Detailed.free_phys uarch');
      incr checked
    end;
    if !cycle > 1_000_000 then Alcotest.fail "runaway simulation"
  done;
  check Alcotest.bool "exercised some restores" true (!checked > 0)

let test_dump_smoke () =
  let uarch = Uarch.Detailed.create demo_prog in
  let oracle, _ = live_logging_oracle demo_prog in
  for i = 0 to 5 do
    ignore (Uarch.Detailed.step_cycle uarch ~now:i oracle
            : Uarch.Detailed.cycle_result)
  done;
  let s = Format.asprintf "%a" Uarch.Detailed.dump uarch in
  check Alcotest.bool "dump nonempty" true (String.length s > 10)

let snapshot_roundtrip_prop =
  QCheck.Test.make ~name:"snapshot round-trip on random programs" ~count:15
    QCheck.(int_bound 10_000)
    (fun seed ->
      let prog =
        Gen.program_of_seed
          ~cfg:{ Gen.default_cfg with outer_iters = 1; inner_iters = 4 }
          seed
      in
      let snaps, _, _, _ = run_detailed prog in
      List.for_all
        (fun key ->
          let fetch, iq = Uarch.Snapshot.decode prog ~capacity:32 key in
          String.equal key (Uarch.Snapshot.encode ~fetch iq))
        snaps)

let test_observer_hook () =
  (* the slow engine's observer sees every cycle exactly once *)
  let calls = ref 0 and last = ref (-1) in
  let observer cycle _uarch _r =
    Alcotest.(check int) "cycles in order" (!last + 1) cycle;
    last := cycle;
    incr calls
  in
  let r =
    Fastsim.Sim.run ~engine:`Slow
      Fastsim.Sim.Spec.(with_observer observer default)
      demo_prog
  in
  Alcotest.(check int) "called once per cycle" r.Fastsim.Sim.cycles !calls

let suite =
  [ Alcotest.test_case "snapshot round-trip every cycle" `Quick
      test_snapshot_roundtrip_every_cycle;
    Alcotest.test_case "deterministic from outcomes" `Quick
      test_determinism_from_outcomes;
    Alcotest.test_case "restore mid-run" `Quick test_restore_mid_run;
    Alcotest.test_case "fresh snapshot shape" `Quick
      test_fresh_snapshot_shape;
    Alcotest.test_case "retire bound" `Quick test_retire_bound;
    Alcotest.test_case "IPC bound" `Quick test_cycles_exceed_ipc_bound;
    Alcotest.test_case "params validation" `Quick test_params_validation;
    Alcotest.test_case "snapshot entry limit is configured" `Quick
      test_snapshot_entry_limit;
    Alcotest.test_case "rename state rebuilt on restore" `Quick
      test_rename_rebuilt_on_restore;
    Alcotest.test_case "dump smoke" `Quick test_dump_smoke;
    QCheck_alcotest.to_alcotest snapshot_roundtrip_prop;
    Alcotest.test_case "observer hook" `Quick test_observer_hook ]

