(* Random-program generation for property tests.

   Programs are random but terminate by construction: a fixed nest of
   counted loops whose bodies are random straight-line instructions,
   forward-only data-dependent branches, and optional leaf calls. Memory
   operands are masked into a scratch data region, so no access can fault
   on the architectural path. *)

module I = Isa.Instr

type cfg = {
  blocks : int;        (* straight-line blocks in the loop body *)
  block_len : int;
  outer_iters : int;
  inner_iters : int;
  use_fp : bool;
  use_calls : bool;
  use_indirect : bool; (* jump-table dispatch inside the loop body *)
  use_recursion : bool;(* an occasional bounded-recursive call *)
}

let default_cfg =
  { blocks = 4;
    block_len = 6;
    outer_iters = 5;
    inner_iters = 12;
    use_fp = true;
    use_calls = true;
    use_indirect = true;
    use_recursion = true }

(* Registers the generator may use freely; r1 is the scratch-data base,
   r10/r11 and r12/r13 are loop counters/limits, r28/r29 are masks. *)
let gp_regs = [| 2; 3; 4; 5; 6; 7; 8; 9; 20; 21; 22; 23 |]
let fp_regs = [| 0; 1; 2; 3; 4; 5; 6 |]

let scratch_words = 256 (* 1 KiB scratch region *)

let pick st arr = arr.(Random.State.int st (Array.length arr))

let random_alu_op st =
  pick st
    [| I.Add; I.Sub; I.And; I.Or; I.Xor; I.Sll; I.Srl; I.Sra; I.Slt; I.Sltu |]

let random_fpu_op st = pick st [| I.Fadd; I.Fsub; I.Fmul; I.Fneg; I.Fabs |]

(* One random non-control instruction. Addresses: r2 = r1 + ((reg & 0xFC)
   aligned); loads/stores go through a freshly computed masked address, so
   they are always in the scratch region and 4-byte aligned (8 for FP). *)
let random_straight st ~use_fp acc =
  let r () = pick st gp_regs in
  let fr () = pick st fp_regs in
  match Random.State.int st (if use_fp then 8 else 6) with
  | 0 -> Isa.Asm.insn (I.Alu (random_alu_op st, r (), r (), r ())) :: acc
  | 1 ->
    let op = random_alu_op st in
    let imm =
      match op with
      | I.Sll | I.Srl | I.Sra -> Random.State.int st 32
      | I.And | I.Or | I.Xor -> Random.State.int st 65536
      | _ -> Random.State.int st 2048 - 1024
    in
    Isa.Asm.insn (I.Alui (op, r (), r (), imm)) :: acc
  | 2 ->
    (* masked load: addr = base + (reg & mask & ~3) *)
    let rd = r () and rs = r () in
    Isa.Asm.insn (I.Load (I.Lw, rd, 27, 0))
    :: Isa.Asm.insn (I.Alu (I.Add, 27, 1, 26))
    :: Isa.Asm.insn (I.Alui (I.And, 26, rs, (scratch_words - 1) * 4 land lnot 3))
    :: acc
  | 3 ->
    let rs = r () and rv = r () in
    Isa.Asm.insn (I.Store (I.Sw, rv, 27, 0))
    :: Isa.Asm.insn (I.Alu (I.Add, 27, 1, 26))
    :: Isa.Asm.insn (I.Alui (I.And, 26, rs, (scratch_words - 1) * 4 land lnot 3))
    :: acc
  | 4 -> Isa.Asm.insn (I.Mul (r (), r (), r ())) :: acc
  | 5 ->
    (match Random.State.int st 2 with
     | 0 -> Isa.Asm.insn (I.Div (r (), r (), r ())) :: acc
     | _ -> Isa.Asm.insn (I.Rem (r (), r (), r ())) :: acc)
  | 6 ->
    Isa.Asm.insn (I.Fop (random_fpu_op st, fr (), fr (), fr ())) :: acc
  | 7 ->
    let fd = fr () and rs = r () in
    (match Random.State.int st 3 with
     | 0 -> Isa.Asm.insn (I.Fcvt_if (fd, rs)) :: acc
     | 1 ->
       (* FP load/store at an 8-aligned scratch address *)
       Isa.Asm.insn (I.Fload (fd, 27, 0))
       :: Isa.Asm.insn (I.Alu (I.Add, 27, 1, 26))
       :: Isa.Asm.insn
            (I.Alui (I.And, 26, rs, (scratch_words - 2) * 4 land lnot 7))
       :: acc
     | _ ->
       Isa.Asm.insn (I.Fstore (fd, 27, 0))
       :: Isa.Asm.insn (I.Alu (I.Add, 27, 1, 26))
       :: Isa.Asm.insn
            (I.Alui (I.And, 26, rs, (scratch_words - 2) * 4 land lnot 7))
       :: acc)
  | _ -> assert false

let program_of_seed ?(cfg = default_cfg) seed =
  let st = Random.State.make [| seed |] in
  let fresh =
    let n = ref 0 in
    fun prefix ->
      incr n;
      Printf.sprintf "%s_%d" prefix !n
  in
  let body = ref [] in
  let emit s = body := s :: !body in
  (* blocks with forward skips between them *)
  for _ = 1 to cfg.blocks do
    let skip = fresh "skip" in
    if Random.State.bool st then begin
      (* data-dependent forward branch over the block *)
      let c = pick st [| I.Eq; I.Ne; I.Lt; I.Ge; I.Le; I.Gt |] in
      emit (Isa.Asm.branch c (pick st gp_regs) (pick st gp_regs) skip)
    end;
    let acc = ref [] in
    for _ = 1 to cfg.block_len do
      acc := random_straight st ~use_fp:cfg.use_fp !acc
    done;
    List.iter emit (List.rev !acc);
    if cfg.use_calls && Random.State.int st 3 = 0 then
      emit (Isa.Asm.call "leaf");
    if cfg.use_recursion && Random.State.int st 4 = 0 then begin
      (* bounded-recursive call: depth = small register value *)
      emit (Isa.Asm.insn (I.Alui (I.And, 4, pick st gp_regs, 7)));
      emit (Isa.Asm.call "recurse")
    end;
    if cfg.use_indirect && Random.State.int st 3 = 0 then begin
      (* dispatch through the jump table on a data-dependent index *)
      let join = fresh "join" in
      emit (Isa.Asm.insn (I.Alui (I.And, 26, pick st gp_regs, 3)));
      emit (Isa.Asm.insn (I.Alui (I.Sll, 26, 26, 2)));
      emit (Isa.Asm.la 27 "dispatch");
      emit (Isa.Asm.insn (I.Alu (I.Add, 27, 27, 26)));
      emit (Isa.Asm.insn (I.Load (I.Lw, 27, 27, 0)));
      emit (Isa.Asm.insn (I.Alu (I.Add, 24, 25, 0)));
      emit (Isa.Asm.la 25 join);
      emit (Isa.Asm.insn (I.Jr 27));
      emit (Isa.Asm.label join);
      emit (Isa.Asm.insn (I.Alu (I.Add, 25, 24, 0)))
    end;
    emit (Isa.Asm.label skip)
  done;
  let body = List.rev !body in
  Isa.Asm.assemble
    ([ Isa.Asm.data "scratch"
         [ Isa.Asm.Words (List.init scratch_words (fun i -> i * 3)) ];
       Isa.Asm.li Isa.Reg.sp Isa.Program.default_stack_top;
       Isa.Asm.la 1 "scratch";
       (* seed the general registers deterministically *)
       Isa.Asm.li 2 (seed land 0xffff);
       Isa.Asm.li 3 ((seed * 7) land 0xffff);
       Isa.Asm.li 4 1;
       Isa.Asm.li 5 2;
       Isa.Asm.li 6 3;
       Isa.Asm.li 7 5;
       Isa.Asm.li 8 8;
       Isa.Asm.li 9 13;
       Isa.Asm.li 20 21;
       Isa.Asm.li 21 34;
       Isa.Asm.li 22 55;
       Isa.Asm.li 23 89;
       Isa.Asm.li 10 0;
       Isa.Asm.li 11 cfg.outer_iters;
       Isa.Asm.label "outer";
       Isa.Asm.li 12 0;
       Isa.Asm.li 13 cfg.inner_iters;
       Isa.Asm.label "inner" ]
    @ body
    @ [ Isa.Asm.insn (I.Alui (I.Add, 12, 12, 1));
        Isa.Asm.blt 12 13 "inner";
        Isa.Asm.insn (I.Alui (I.Add, 10, 10, 1));
        Isa.Asm.blt 10 11 "outer";
        Isa.Asm.halt;
        (* a leaf function with a little work *)
        Isa.Asm.label "leaf";
        Isa.Asm.insn (I.Alu (I.Add, 24, 2, 3));
        Isa.Asm.insn (I.Alui (I.Sra, 24, 24, 1));
        Isa.Asm.ret;
        (* recurse(r4 = depth): real stack frames, returns r4 summed *)
        Isa.Asm.label "recurse";
        Isa.Asm.bgt 4 0 "recurse_go";
        Isa.Asm.li 5 0;
        Isa.Asm.ret;
        Isa.Asm.label "recurse_go";
        Isa.Asm.insn (I.Alui (I.Add, Isa.Reg.sp, Isa.Reg.sp, -8));
        Isa.Asm.insn (I.Store (I.Sw, Isa.Reg.link, Isa.Reg.sp, 0));
        Isa.Asm.insn (I.Store (I.Sw, 4, Isa.Reg.sp, 4));
        Isa.Asm.insn (I.Alui (I.Add, 4, 4, -1));
        Isa.Asm.call "recurse";
        Isa.Asm.insn (I.Load (I.Lw, 4, Isa.Reg.sp, 4));
        Isa.Asm.insn (I.Alu (I.Add, 5, 5, 4));
        Isa.Asm.insn (I.Load (I.Lw, Isa.Reg.link, Isa.Reg.sp, 0));
        Isa.Asm.insn (I.Alui (I.Add, Isa.Reg.sp, Isa.Reg.sp, 8));
        Isa.Asm.ret;
        (* jump-table cases: tweak a register and return via r25 *)
        Isa.Asm.label "case0";
        Isa.Asm.insn (I.Alui (I.Add, 20, 20, 3));
        Isa.Asm.insn (I.Jr 25);
        Isa.Asm.label "case1";
        Isa.Asm.insn (I.Alui (I.Xor, 21, 21, 0x55));
        Isa.Asm.insn (I.Jr 25);
        Isa.Asm.label "case2";
        Isa.Asm.insn (I.Alui (I.Sra, 22, 22, 1));
        Isa.Asm.insn (I.Jr 25);
        Isa.Asm.label "case3";
        Isa.Asm.insn (I.Alu (I.Sub, 23, 23, 20));
        Isa.Asm.insn (I.Jr 25);
        Isa.Asm.data "dispatch"
          [ Isa.Asm.Label_words [ "case0"; "case1"; "case2"; "case3" ] ] ])

(* ---------------------------------------------------------------- *)
(* Random Sim.Spec values for the JSON round-trip property. Only the
   serializable fields vary (the runtime fields — pcache, obs, observer —
   have no JSON form and stay None). *)

module Spec = Fastsim.Sim.Spec

let random_policy st =
  match Random.State.int st 4 with
  | 0 -> Memo.Pcache.Unbounded
  | 1 -> Memo.Pcache.Flush_on_full (256 lsl Random.State.int st 10)
  | 2 -> Memo.Pcache.Copying_gc (256 lsl Random.State.int st 10)
  | _ ->
    let total = 1024 lsl Random.State.int st 8 in
    Memo.Pcache.Generational_gc { nursery = max 256 (total / 4); total }

let random_predictor st =
  match Random.State.int st 3 with
  | 0 -> Fastsim.Sim.Standard
  | 1 -> Fastsim.Sim.Not_taken
  | _ -> Fastsim.Sim.Taken

let random_params st =
  let p = Uarch.Params.default in
  let w = 1 lsl Random.State.int st 3 in
  let fu_latency =
    let a = Array.copy p.Uarch.Params.fu_latency in
    for _ = 1 to Random.State.int st 3 do
      a.(Random.State.int st (Array.length a)) <- 1 + Random.State.int st 40
    done;
    a
  in
  let issue_ports =
    let a = Array.copy p.Uarch.Params.issue_ports in
    for _ = 1 to Random.State.int st 3 do
      a.(Random.State.int st (Array.length a)) <-
        (match Random.State.int st 3 with
         | 0 -> Uarch.Params.P_int
         | 1 -> Uarch.Params.P_fp
         | _ -> Uarch.Params.P_mem)
    done;
    a
  in
  { p with
    Uarch.Params.fetch_width = w;
    decode_width = w;
    issue_width = Random.State.int st 5;
    retire_width = w;
    int_units = 1 + Random.State.int st 4;
    fp_units = 1 + Random.State.int st 4;
    active_list = 16 lsl Random.State.int st 3;
    int_queue = 8 lsl Random.State.int st 3;
    fu_latency;
    issue_ports;
    phys_int_regs = 48 + 16 * Random.State.int st 4 }

let random_cache_config st =
  if Random.State.bool st then Cachesim.Config.tiny
  else
    { Cachesim.Config.default with
      Cachesim.Config.l1_size = 1024 lsl Random.State.int st 6;
      l1_ways = 1 lsl Random.State.int st 3;
      mem_latency = 20 + Random.State.int st 200 }

let random_spec st =
  Spec.default
  |> Spec.with_policy (random_policy st)
  |> Spec.with_predictor (random_predictor st)
  |> (if Random.State.bool st then Spec.with_params (random_params st)
      else fun s -> s)
  |> (if Random.State.bool st then
        Spec.with_cache_config (random_cache_config st)
      else fun s -> s)
  |> (if Random.State.bool st then
        Spec.with_max_cycles (1 + Random.State.int st 10_000_000)
      else fun s -> s)
